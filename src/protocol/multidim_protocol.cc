#include "protocol/multidim_protocol.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/bit_util.h"
#include "common/check.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "protocol/oracle_wire.h"
#include "protocol/wire.h"

namespace ldp::protocol {

namespace {

constexpr size_t kItemTail = 12;  // [seed u64][cell u32]

// Chunked deterministic parallel encode, mirroring the kEncodeChunk /
// ChunkSeed scheme of core/range_mechanism.cc: every chunk draws from its
// own seed-derived Rng into its own output slots, so the result cannot
// depend on how chunks land on workers.
constexpr uint64_t kEncodeChunk = uint64_t{1} << 14;

uint64_t ChunkSeed(uint64_t seed, uint64_t chunk) {
  return Mix64(seed + 0x9E3779B97F4A7C15ULL * (chunk + 1));
}

void AppendItem(std::vector<uint8_t>& out, const MultiDimReport& report) {
  for (uint8_t level : report.levels) {
    AppendU8(out, level);
  }
  AppendU64(out, report.seed);
  AppendU32(out, report.cell);
}

// Decodes one fixed-size item, consuming the full slot before validating
// so batch readers stay aligned across a malformed item.
bool ReadItem(WireReader& reader, uint32_t dims, MultiDimReport* report) {
  report->levels.resize(dims);
  bool nontrivial = false;
  for (uint32_t dim = 0; dim < dims; ++dim) {
    uint8_t level = 0;
    if (!reader.ReadU8(&level)) return false;
    report->levels[dim] = level;
    if (level != 0) nontrivial = true;
  }
  if (!reader.ReadU64(&report->seed) || !reader.ReadU32(&report->cell)) {
    return false;
  }
  return nontrivial;
}

}  // namespace

std::vector<uint8_t> SerializeMultiDimReport(const MultiDimReport& report) {
  const size_t dims = report.levels.size();
  LDP_CHECK_GE(dims, size_t{1});
  LDP_CHECK_LE(dims, size_t{kMaxWireDimensions});
  std::vector<uint8_t> payload;
  payload.reserve(1 + dims + kItemTail);
  AppendU8(payload, static_cast<uint8_t>(dims));
  AppendItem(payload, report);
  return EncodeEnvelope(MechanismTag::kMultiDimReport, payload);
}

ParseError ParseMultiDimReport(std::span<const uint8_t> bytes,
                               MultiDimReport* report) {
  Envelope env;
  ParseError err = DecodeEnvelope(bytes, &env);
  if (err != ParseError::kOk) return err;
  if (env.mechanism != MechanismTag::kMultiDimReport) {
    return ParseError::kBadPayload;
  }
  WireReader reader(env.payload);
  uint8_t dims = 0;
  if (!reader.ReadU8(&dims)) return ParseError::kBadPayload;
  if (dims == 0 || dims > kMaxWireDimensions) return ParseError::kBadPayload;
  if (env.payload.size() != 1 + size_t{dims} + kItemTail) {
    return ParseError::kBadPayload;
  }
  MultiDimReport out;
  if (!ReadItem(reader, dims, &out)) return ParseError::kBadPayload;
  *report = std::move(out);
  return ParseError::kOk;
}

std::vector<uint8_t> SerializeMultiDimReportBatch(
    uint32_t dims, std::span<const MultiDimReport> reports) {
  LDP_CHECK_GE(dims, 1u);
  LDP_CHECK_LE(dims, kMaxWireDimensions);
  std::vector<uint8_t> payload;
  payload.reserve(11 + reports.size() * (dims + kItemTail));
  AppendU8(payload, static_cast<uint8_t>(dims));
  AppendVarU64(payload, reports.size());
  for (const MultiDimReport& report : reports) {
    LDP_CHECK_EQ(report.levels.size(), size_t{dims});
    AppendItem(payload, report);
  }
  return EncodeEnvelope(MechanismTag::kMultiDimReportBatch, payload);
}

ParseError ParseMultiDimReportBatch(std::span<const uint8_t> bytes,
                                    std::vector<MultiDimReport>* reports,
                                    uint64_t* malformed) {
  Envelope env;
  ParseError err = DecodeEnvelope(bytes, &env);
  if (err != ParseError::kOk) return err;
  if (env.mechanism != MechanismTag::kMultiDimReportBatch) {
    return ParseError::kBadPayload;
  }
  WireReader reader(env.payload);
  uint8_t dims = 0;
  uint64_t count = 0;
  if (!reader.ReadU8(&dims)) return ParseError::kBadPayload;
  if (dims == 0 || dims > kMaxWireDimensions) return ParseError::kBadPayload;
  if (!reader.ReadVarU64(&count)) return ParseError::kBadPayload;
  const uint64_t item_size = uint64_t{dims} + kItemTail;
  if (count > reader.Remaining() / item_size ||
      reader.Remaining() != count * item_size) {
    return ParseError::kBadPayload;
  }
  reports->clear();
  reports->reserve(count);
  uint64_t bad = 0;
  for (uint64_t i = 0; i < count; ++i) {
    MultiDimReport report;
    if (ReadItem(reader, dims, &report)) {
      reports->push_back(std::move(report));
    } else {
      ++bad;
    }
  }
  if (malformed != nullptr) *malformed = bad;
  return ParseError::kOk;
}

MultiDimClient::MultiDimClient(uint64_t domain_per_dim, uint32_t dimensions,
                               double eps, uint64_t fanout)
    : dims_(dimensions),
      eps_(eps),
      shape_(domain_per_dim, fanout),
      g_(OlhOptimalHashRange(eps)) {
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
  LDP_CHECK_GE(dims_, 1u);
  LDP_CHECK_LE(dims_, kMaxWireDimensions);
  LDP_CHECK_LE(shape_.height(), 255u);  // levels travel as u8
  uint64_t total = 0;
  LDP_CHECK_MSG(GridCellsWithinBudget(shape_, dims_,
                                      HierarchicalGrid::kDefaultCellBudget,
                                      &total),
                "multidim grid cell budget exceeded; reduce D or d");
  const uint64_t radix = uint64_t{shape_.height()} + 1;
  tuple_count_ = IntPow(radix, dims_);
  tuple_cells_.assign(tuple_count_, 1);
  for (uint64_t t = 1; t < tuple_count_; ++t) {
    uint64_t rest = t;
    uint64_t cells = 1;
    for (uint32_t dim = 0; dim < dims_; ++dim) {
      cells *= shape_.NodesAtLevel(static_cast<uint32_t>(rest % radix));
      rest /= radix;
    }
    tuple_cells_[t] = cells;
  }
}

MultiDimReport MultiDimClient::Encode(const uint64_t* coords,
                                      Rng& rng) const {
  const uint64_t radix = uint64_t{shape_.height()} + 1;
  for (uint32_t dim = 0; dim < dims_; ++dim) {
    LDP_CHECK_LT(coords[dim], shape_.domain());
  }
  // Uniform level tuple skipping the all-root tuple 0, then the OLH
  // randomizer for that tuple's grid — the same draw order as
  // HierarchicalGrid::EncodePoint (tuple pick, then oracle).
  uint64_t tuple = 1 + rng.UniformInt(tuple_count_ - 1);
  MultiDimReport report;
  report.levels.resize(dims_);
  uint64_t rest = tuple;
  uint64_t cell = 0;
  uint64_t cell_stride = 1;
  for (uint32_t dim = 0; dim < dims_; ++dim) {
    uint32_t level = static_cast<uint32_t>(rest % radix);
    rest /= radix;
    report.levels[dim] = static_cast<uint8_t>(level);
    cell += shape_.NodeContaining(level, coords[dim]) * cell_stride;
    cell_stride *= shape_.NodesAtLevel(level);
  }
  OlhWireReport olh =
      EncodeOlhReport(tuple_cells_[tuple], eps_, cell, rng, g_);
  report.seed = olh.seed;
  report.cell = static_cast<uint32_t>(olh.cell);
  return report;
}

std::vector<uint8_t> MultiDimClient::EncodeSerialized(const uint64_t* coords,
                                                      Rng& rng) const {
  return SerializeMultiDimReport(Encode(coords, rng));
}

std::vector<MultiDimReport> MultiDimClient::EncodeUsers(
    std::span<const uint64_t> coords, Rng& rng) const {
  LDP_CHECK_EQ(coords.size() % dims_, size_t{0});
  std::vector<MultiDimReport> reports;
  reports.reserve(coords.size() / dims_);
  for (size_t i = 0; i < coords.size(); i += dims_) {
    reports.push_back(Encode(coords.data() + i, rng));
  }
  return reports;
}

std::vector<uint8_t> MultiDimClient::EncodeUsersSerialized(
    std::span<const uint64_t> coords, Rng& rng) const {
  return SerializeMultiDimReportBatch(dims_, EncodeUsers(coords, rng));
}

std::vector<MultiDimReport> MultiDimClient::EncodeUsersSharded(
    std::span<const uint64_t> coords, uint64_t seed,
    unsigned threads) const {
  LDP_CHECK_EQ(coords.size() % dims_, size_t{0});
  const uint64_t n = coords.size() / dims_;
  std::vector<MultiDimReport> reports(n);
  if (n == 0) return reports;
  if (threads == 0) threads = HardwareThreads();
  const uint64_t num_chunks = (n + kEncodeChunk - 1) / kEncodeChunk;
  auto encode_chunk = [&](uint64_t chunk) {
    Rng rng(ChunkSeed(seed, chunk));
    const uint64_t begin = chunk * kEncodeChunk;
    const uint64_t end = std::min(n, begin + kEncodeChunk);
    for (uint64_t i = begin; i < end; ++i) {
      reports[i] = Encode(coords.data() + i * dims_, rng);
    }
  };
  if (threads <= 1 || num_chunks == 1) {
    for (uint64_t chunk = 0; chunk < num_chunks; ++chunk) {
      encode_chunk(chunk);
    }
  } else {
    ParallelFor(num_chunks, threads,
                [&](unsigned, uint64_t begin, uint64_t end) {
                  for (uint64_t chunk = begin; chunk < end; ++chunk) {
                    encode_chunk(chunk);
                  }
                });
  }
  return reports;
}

MultiDimServer::MultiDimServer(uint64_t domain_per_dim, uint32_t dimensions,
                               double eps, uint64_t fanout,
                               uint64_t max_total_cells)
    : dims_(dimensions),
      eps_(eps),
      shape_(domain_per_dim, fanout),
      g_(OlhOptimalHashRange(eps)),
      max_total_cells_(max_total_cells) {
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
  LDP_CHECK_GE(dims_, 1u);
  LDP_CHECK_LE(dims_, kMaxWireDimensions);
  LDP_CHECK_LE(shape_.height(), 255u);
  uint64_t total = 0;
  LDP_CHECK_MSG(
      GridCellsWithinBudget(shape_, dims_, max_total_cells, &total),
      "MultiDimServer cell budget exceeded; reduce D, d or raise "
      "max_total_cells");
  const uint64_t radix = uint64_t{shape_.height()} + 1;
  tuple_count_ = IntPow(radix, dims_);
  oracles_.resize(tuple_count_);
  for (uint64_t t = 1; t < tuple_count_; ++t) {
    uint64_t rest = t;
    uint64_t cells = 1;
    for (uint32_t dim = 0; dim < dims_; ++dim) {
      cells *= shape_.NodesAtLevel(static_cast<uint32_t>(rest % radix));
      rest /= radix;
    }
    oracles_[t] =
        std::make_unique<OlhOracle>(cells, eps, g_, OlhDecode::kDeferred);
  }
}

std::string MultiDimServer::Name() const {
  return "MultiDim" + std::to_string(dims_) + "D";
}

std::span<const uint8_t> MultiDimServer::AcceptedWireVersions() const {
  static constexpr uint8_t kV2Only[] = {kWireVersionV2};
  return kV2Only;
}

uint64_t MultiDimServer::report_allocation_count() const {
  uint64_t total = 0;
  for (const auto& oracle : oracles_) {
    if (oracle != nullptr) total += oracle->pending_allocation_count();
  }
  return total;
}

bool MultiDimServer::Absorb(const MultiDimReport& report) {
  LDP_CHECK_MSG(!finalized_, "Absorb after Finalize");
  if (report.levels.size() != dims_ || report.cell >= g_) {
    stats_.CountRejected();
    return false;
  }
  const uint64_t radix = uint64_t{shape_.height()} + 1;
  uint64_t tuple = 0;
  uint64_t tuple_stride = 1;
  for (uint32_t dim = 0; dim < dims_; ++dim) {
    const uint8_t level = report.levels[dim];
    if (level > shape_.height()) {
      stats_.CountRejected();
      return false;
    }
    tuple += uint64_t{level} * tuple_stride;
    tuple_stride *= radix;
  }
  if (tuple == 0) {  // the all-root tuple carries no oracle report
    stats_.CountRejected();
    return false;
  }
  oracles_[tuple]->AbsorbReport(report.seed, report.cell);
  stats_.CountAccepted();
  return true;
}

bool MultiDimServer::AbsorbSerialized(std::span<const uint8_t> bytes) {
  MultiDimReport report;
  if (ParseMultiDimReport(bytes, &report) != ParseError::kOk) {
    stats_.CountRejected();
    return false;
  }
  return Absorb(report);
}

uint64_t MultiDimServer::AbsorbBatch(
    std::span<const MultiDimReport> reports) {
  uint64_t accepted = 0;
  for (const MultiDimReport& report : reports) {
    if (Absorb(report)) ++accepted;
  }
  return accepted;
}

ParseError MultiDimServer::DoAbsorbBatchSerialized(
    std::span<const uint8_t> bytes, uint64_t* accepted) {
  LDP_CHECK_MSG(!finalized_, "Absorb after Finalize");
  // In-place ingestion: items are decoded directly out of the caller's
  // buffer (a streamed chunk's bytes) and appended straight into the
  // per-tuple oracles' arena-backed report columns. No MultiDimReport is
  // materialized and no per-report vector grows — the only allocations on
  // this path are amortized arena blocks, flat per chunk at steady state.
  // Accounting is identical to the Parse-then-Absorb route: a structural
  // failure rejects the whole message; per-item failures (all-root tuple,
  // bad level, cell >= g, foreign dims) are counted individually.
  if (accepted != nullptr) *accepted = 0;
  Envelope env;
  ParseError err = DecodeEnvelope(bytes, &env);
  if (err == ParseError::kOk &&
      env.mechanism != MechanismTag::kMultiDimReportBatch) {
    err = ParseError::kBadPayload;
  }
  WireReader reader(env.payload);
  uint8_t dims = 0;
  uint64_t count = 0;
  if (err == ParseError::kOk) {
    if (!reader.ReadU8(&dims) || dims == 0 || dims > kMaxWireDimensions ||
        !reader.ReadVarU64(&count)) {
      err = ParseError::kBadPayload;
    } else {
      const uint64_t item_size = uint64_t{dims} + kItemTail;
      if (count > reader.Remaining() / item_size ||
          reader.Remaining() != count * item_size) {
        err = ParseError::kBadPayload;
      }
    }
  }
  if (err != ParseError::kOk) {
    stats_.CountRejected();
    return err;
  }
  if (dims != dims_) {
    // Structurally valid batch for another dimensionality: every item is
    // rejected, exactly as the Absorb loop would have.
    stats_.CountRejected(count);
    return ParseError::kOk;
  }
  const uint64_t radix = uint64_t{shape_.height()} + 1;
  uint64_t ok = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t tuple = 0;
    uint64_t tuple_stride = 1;
    bool levels_ok = true;
    for (uint32_t dim = 0; dim < dims_; ++dim) {
      uint8_t level = 0;
      levels_ok = reader.ReadU8(&level) && levels_ok;
      if (level > shape_.height()) {
        levels_ok = false;
      } else {
        tuple += uint64_t{level} * tuple_stride;
        tuple_stride *= radix;
      }
    }
    uint64_t seed = 0;
    uint32_t cell = 0;
    // The size pre-check guarantees every fixed-width read succeeds.
    LDP_CHECK(reader.ReadU64(&seed) && reader.ReadU32(&cell));
    if (!levels_ok || tuple == 0 || cell >= g_) {
      stats_.CountRejected();
      continue;
    }
    oracles_[tuple]->AbsorbReport(seed, cell);
    stats_.CountAccepted();
    ++ok;
  }
  if (accepted != nullptr) *accepted = ok;
  return ParseError::kOk;
}

void MultiDimServer::AppendStateBody(std::vector<uint8_t>& out) const {
  // [tuples varint][per non-trivial tuple (t = 1..): OlhOracle record].
  AppendVarU64(out, tuple_count_);
  for (uint64_t t = 1; t < tuple_count_; ++t) {
    oracles_[t]->AppendState(out);
  }
}

bool MultiDimServer::RestoreStateBody(std::span<const uint8_t> body) {
  WireReader reader(body);
  uint64_t tuples = 0;
  if (!reader.ReadVarU64(&tuples)) return false;
  // Cross-check against this server's own grid family, never an
  // allocation size.
  if (tuples != tuple_count_) return false;
  for (uint64_t t = 1; t < tuple_count_; ++t) {
    if (!oracles_[t]->RestoreState(reader)) return false;
  }
  return reader.AtEnd();
}

std::unique_ptr<service::AggregatorServer> MultiDimServer::DoCloneEmpty()
    const {
  return std::make_unique<MultiDimServer>(shape_.domain(), dims_, eps_,
                                          shape_.fanout(), max_total_cells_);
}

service::MergeStatus MultiDimServer::DoMergeFrom(
    service::AggregatorServer& other) {
  auto& o = static_cast<MultiDimServer&>(other);
  for (uint64_t t = 1; t < tuple_count_; ++t) {
    oracles_[t]->MergeFrom(*o.oracles_[t]);
  }
  return service::MergeStatus::kOk;
}

void MultiDimServer::DoFinalize() {
  estimates_.assign(tuple_count_, {});
  estimates_[0] = {1.0};  // the all-root cell is the whole space
  for (uint64_t t = 1; t < tuple_count_; ++t) {
    estimates_[t] = oracles_[t]->EstimateFractions();
  }
}

double MultiDimServer::BoxQuery(std::span<const AxisInterval> box) const {
  LDP_CHECK_MSG(finalized_, "BoxQuery before Finalize");
  double total = 0.0;
  VisitGridBoxCells(shape_, dims_, box, [&](uint64_t tuple, uint64_t cell) {
    total += estimates_[tuple][cell];
  });
  return total;
}

RangeEstimate MultiDimServer::BoxQueryWithUncertainty(
    std::span<const AxisInterval> box) const {
  LDP_CHECK_MSG(finalized_, "BoxQuery before Finalize");
  double total = 0.0;
  double variance = 0.0;
  VisitGridBoxCells(shape_, dims_, box, [&](uint64_t tuple, uint64_t cell) {
    total += estimates_[tuple][cell];
    if (tuple != 0) variance += oracles_[tuple]->EstimatorVariance();
  });
  return RangeEstimate{total, std::sqrt(variance)};
}

double MultiDimServer::RangeQuery(uint64_t a, uint64_t b) const {
  std::vector<AxisInterval> box(dims_,
                                AxisInterval{0, shape_.domain() - 1});
  box[0] = AxisInterval{a, b};
  return BoxQuery(box);
}

RangeEstimate MultiDimServer::RangeQueryWithUncertainty(uint64_t a,
                                                        uint64_t b) const {
  std::vector<AxisInterval> box(dims_,
                                AxisInterval{0, shape_.domain() - 1});
  box[0] = AxisInterval{a, b};
  return BoxQueryWithUncertainty(box);
}

std::vector<double> MultiDimServer::EstimateFrequencies() const {
  LDP_CHECK_MSG(finalized_, "EstimateFrequencies before Finalize");
  std::vector<double> est(shape_.domain(), 0.0);
  for (uint64_t z = 0; z < shape_.domain(); ++z) {
    est[z] = RangeQuery(z, z);
  }
  return est;
}

}  // namespace ldp::protocol
