// Deployable client/server split of the AHEAD adaptive mechanism
// (core/ahead.h) — the first protocol here whose *message domain changes
// mid-collection*: the tree the phase-2 reports are encoded against does
// not exist until the server has seen phase 1.
//
// Exchange:
//   1. Phase-1 clients sample a level of the *complete* B-ary tree
//      uniformly and ship a GRR report over that level's nodes
//      ([phase=1][level][perturbed node index]) — an HH_B-style
//      hierarchical histogram, so every candidate node's mass is
//      estimated at its own granularity with constant variance (a flat
//      phase-1 histogram would drown shallow nodes in summed cell
//      noise).
//   2. The server ends phase 1 with BuildTree(), deriving the adaptive
//      decomposition from the debiased, consistency-smoothed phase-1
//      estimates, and broadcasts it as a kAheadTree message (the
//      canonical split-node set).
//   3. Phase-2 clients absorb the tree, sample a frontier level uniformly
//      and ship a GRR report over that frontier
//      ([phase=2][level][perturbed frontier index]).
//   4. The server debiases per level, combines carried-leaf estimates by
//      inverse variance, runs the irregular-tree constrained inference,
//      and serves range / frequency / quantile queries.
//
// GRR is the inner oracle on the wire: its report *is* a single node id,
// which keeps every AHEAD report a fixed 10-byte payload (and batch items
// realignable); the in-process simulation (core/ahead.h) runs better
// oracles for large domains. All AHEAD messages are v2-only — the
// mechanism postdates the envelope, there is no legacy unframed form.
//
// Every parser is total over adversarial bytes: forged phases, forged
// node ids (out of the coarse domain or a frontier), reports for the
// wrong phase era, and malformed tree descriptions (orphan or duplicate
// splits, out-of-range coordinates) are rejected with explicit errors and
// counted, never crashed on.

#ifndef LDPRANGE_PROTOCOL_AHEAD_PROTOCOL_H_
#define LDPRANGE_PROTOCOL_AHEAD_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/random.h"
#include "core/ahead.h"
#include "core/badic.h"
#include "protocol/envelope.h"
#include "service/aggregator_server.h"

namespace ldp::protocol {

/// One unserialized AHEAD report. `level` is 1-based in both phases: for
/// phase 1 it indexes a complete-tree level and `node` is a GRR-perturbed
/// node index at that level; for phase 2 it indexes an adaptive-tree
/// frontier and `node` a GRR-perturbed index into it.
struct AheadWireReport {
  uint8_t phase = 1;
  uint32_t level = 1;
  uint64_t node = 0;

  bool operator==(const AheadWireReport&) const = default;
};

/// Serializes one report under the v2 envelope (kAheadReport, 10-byte
/// payload [phase u8][level u8][node u64]).
std::vector<uint8_t> SerializeAheadReport(const AheadWireReport& report);

/// Parses one report with an explicit error code; structural validity
/// (known phase, nonzero level) is enforced here, level/node range
/// validation happens server-side where the domains are known.
ParseError ParseAheadReportDetailed(std::span<const uint8_t> bytes,
                                    AheadWireReport* report);

/// Convenience wrapper: true iff ParseAheadReportDetailed returns kOk.
bool ParseAheadReport(std::span<const uint8_t> bytes,
                      AheadWireReport* report);

/// One framed batch (kAheadReportBatch):
/// payload = [count varint][count x ([phase u8][level u8][node u64])].
std::vector<uint8_t> SerializeAheadReportBatch(
    std::span<const AheadWireReport> reports);

/// Parses a batch; per-item validation failures are skipped and counted
/// in `malformed` (may be null), structural failures reject the message.
ParseError ParseAheadReportBatch(std::span<const uint8_t> bytes,
                                 std::vector<AheadWireReport>* reports,
                                 uint64_t* malformed = nullptr);

/// Hard caps ParseAheadTree enforces before reconstructing anything, so a
/// forged kAheadTree message cannot drive the shape math into overflow or
/// the node allocation into attacker-chosen sizes. Generous for every
/// real deployment (the paper's largest domain is 2^22).
inline constexpr uint64_t kMaxAheadTreeDomain = uint64_t{1} << 32;
inline constexpr uint64_t kMaxAheadTreeFanout = 1024;
inline constexpr uint64_t kMaxAheadTreeNodes = uint64_t{1} << 22;

/// Serializes an adaptive tree as its canonical BFS split-node set under
/// a kAheadTree envelope (the server -> client phase transition message).
std::vector<uint8_t> SerializeAheadTree(uint64_t domain, uint64_t fanout,
                                        const AdaptiveTree& tree);

/// Parses + validates a kAheadTree message. On success `*domain` /
/// `*fanout` carry the advertised shape and `*tree` the reconstructed
/// decomposition; any structural violation (see AdaptiveTree::
/// TryFromSplits) is kBadPayload.
ParseError ParseAheadTree(std::span<const uint8_t> bytes, uint64_t* domain,
                          uint64_t* fanout,
                          std::optional<AdaptiveTree>* tree);

/// Client-side encoder for both phases.
class AheadClient {
 public:
  AheadClient(uint64_t domain, uint64_t fanout, double eps);

  const TreeShape& shape() const { return shape_; }
  bool has_tree() const { return tree_.has_value(); }
  const AdaptiveTree& tree() const;

  /// Phase 1: sample a complete-tree level uniformly, GRR over its nodes.
  AheadWireReport EncodePhase1(uint64_t value, Rng& rng) const;
  std::vector<uint8_t> EncodePhase1Serialized(uint64_t value, Rng& rng) const;

  /// Installs the server's tree broadcast; false (tree unchanged) when
  /// the message is malformed or disagrees with this client's
  /// domain/fanout.
  bool AbsorbTreeDescription(std::span<const uint8_t> bytes);

  /// In-process handoff for tests and simulations.
  void SetTree(AdaptiveTree tree);

  /// Phase 2 (requires the tree): sample a level, GRR over its frontier.
  AheadWireReport EncodePhase2(uint64_t value, Rng& rng) const;
  std::vector<uint8_t> EncodePhase2Serialized(uint64_t value, Rng& rng) const;

  /// Batched phase-2 encode: one report per value, drawn exactly as the
  /// EncodePhase2 loop would, framed as one kAheadReportBatch message.
  std::vector<AheadWireReport> EncodePhase2Users(
      std::span<const uint64_t> values, Rng& rng) const;
  std::vector<uint8_t> EncodePhase2UsersSerialized(
      std::span<const uint64_t> values, Rng& rng) const;

 private:
  TreeShape shape_;
  double eps_;
  std::optional<AdaptiveTree> tree_;
};

/// Post-processing knobs of the server pipeline (the wire analogue of the
/// corresponding AheadConfig fields).
struct AheadServerConfig {
  double threshold_scale = 1.0;  // <= 0 forces a full split to max_depth
  uint32_t max_depth = 0;        // 0 = the full tree height
  bool consistency = true;
  bool nonnegativity = true;
};

/// Server-side aggregator: phase-1 per-level GRR histograms ->
/// BuildTree() -> phase-2 per-frontier GRR aggregation -> Finalize() ->
/// queries. Ingestion accounting, finalize discipline, and quantile
/// search come from service::AggregatorServer.
class AheadServer final : public service::AggregatorServer {
 public:
  AheadServer(uint64_t domain, uint64_t fanout, double eps,
              const AheadServerConfig& config = {});

  std::string Name() const override { return "Ahead"; }
  const TreeShape& shape() const { return shape_; }
  uint64_t domain() const override { return shape_.domain(); }
  bool tree_built() const { return tree_.has_value(); }
  const AdaptiveTree& tree() const;

  /// AHEAD messages are v2-only (the mechanism postdates the envelope).
  std::span<const uint8_t> AcceptedWireVersions() const override;

  /// Ingests one report; false (counted in rejected_reports) on a phase
  /// that does not match the current era — phase 2 before BuildTree,
  /// phase 1 after — or an out-of-range node id.
  bool Absorb(const AheadWireReport& report);
  bool AbsorbSerialized(std::span<const uint8_t> bytes) override;

  /// Batched ingestion; returns the number of accepted reports.
  uint64_t AbsorbBatch(std::span<const AheadWireReport> reports);
  ParseError DoAbsorbBatchSerialized(std::span<const uint8_t> bytes,
                                   uint64_t* accepted) override;

  /// Ends phase 1: derives the adaptive tree from the debiased coarse
  /// histogram and returns the serialized kAheadTree broadcast. Idempotent
  /// after the first call (returns the same message).
  std::vector<uint8_t> BuildTree();

  /// Installs a kAheadTree broadcast produced by *another* server's
  /// BuildTree() — the distributed two-phase handoff: the query node
  /// builds the tree once, and each shard's fresh phase-2 server adopts
  /// it instead of deriving its own from phase-1 reports it never saw.
  /// Returns false (state unchanged) on malformed bytes, a domain/fanout
  /// mismatch, or a *different* tree already in place; idempotent when
  /// the identical tree is already installed. Must precede Finalize.
  bool InstallTree(std::span<const uint8_t> bytes);

  uint64_t phase1_reports() const { return phase1_reports_; }
  uint64_t phase2_reports() const { return phase2_reports_; }

  double RangeQuery(uint64_t a, uint64_t b) const override;
  /// The exact per-node variance accounting of the adaptive estimate
  /// (not a worst-case envelope — AHEAD tracks its node variances).
  RangeEstimate RangeQueryWithUncertainty(uint64_t a,
                                          uint64_t b) const override;
  std::vector<double> EstimateFrequencies() const override;

 private:
  /// Builds the tree if phase 1 was never closed, then debiases and
  /// post-processes.
  void DoFinalize() override;
  service::StateKind state_kind() const override {
    return service::StateKind::kAhead;
  }
  uint64_t state_fanout() const override { return shape_.fanout(); }
  double state_epsilon() const override { return eps_; }
  void AppendStateBody(std::vector<uint8_t>& out) const override;
  bool RestoreStateBody(std::span<const uint8_t> body) override;
  std::unique_ptr<service::AggregatorServer> DoCloneEmpty() const override;
  service::MergeStatus DoMergeFrom(service::AggregatorServer& other) override;

  TreeShape shape_;
  double eps_;
  AheadServerConfig config_;
  uint32_t max_depth_;
  // phase1_counts_[l-1] = GRR tallies over complete-tree level l.
  std::vector<std::vector<uint64_t>> phase1_counts_;
  std::vector<std::vector<uint64_t>> level_counts_;  // per frontier level
  std::optional<AdaptiveTree> tree_;
  std::vector<uint8_t> tree_message_;
  uint64_t phase1_reports_ = 0;
  uint64_t phase2_reports_ = 0;
  std::vector<double> node_values_;
  std::vector<double> node_variances_;
};

}  // namespace ldp::protocol

#endif  // LDPRANGE_PROTOCOL_AHEAD_PROTOCOL_H_
