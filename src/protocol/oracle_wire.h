// Wire formats for the four plain frequency-oracle report shapes (GRR,
// OUE, SUE, OLH), framed under the v2 envelope.
//
// The in-process oracles in src/frequency fold client randomization
// straight into aggregator state and never materialize a report; these
// types are what the same mechanisms look like when the two sides are
// separated by a network. Each has a client-side encoder (the one place
// the private value is touched — eps-LDP before the report exists), a
// Serialize into a v2 envelope, and a total, bounds-checked Parse.
//
// Payload layouts (see envelope.h for the surrounding header):
//   GRR  [value varint]
//   OUE  [num_bits varint][packed bits, u32-length-prefixed]
//   SUE  [num_bits varint][packed bits, u32-length-prefixed]
//   OLH  [seed u64][cell varint]
// OUE/SUE pack bit j of the perturbed unary vector into byte j/8, bit
// j%8; unused bits of the last byte must be zero.

#ifndef LDPRANGE_PROTOCOL_ORACLE_WIRE_H_
#define LDPRANGE_PROTOCOL_ORACLE_WIRE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "protocol/envelope.h"

namespace ldp::protocol {

/// One GRR report: the (perturbed) value itself.
struct GrrWireReport {
  uint64_t value = 0;

  bool operator==(const GrrWireReport&) const = default;
};

/// One unary-encoding report (shared shape for OUE and SUE): the
/// perturbed D-bit vector, packed little-endian within each byte.
struct UnaryWireReport {
  uint64_t num_bits = 0;
  std::vector<uint8_t> packed;  // (num_bits + 7) / 8 bytes

  bool Bit(uint64_t j) const {
    return (packed[j / 8] >> (j % 8)) & 1;
  }
  void SetBit(uint64_t j) { packed[j / 8] |= uint8_t{1} << (j % 8); }

  bool operator==(const UnaryWireReport&) const = default;
};

/// One OLH report: the user's public hash seed and the GRR-perturbed
/// cell in [0, g).
struct OlhWireReport {
  uint64_t seed = 0;
  uint64_t cell = 0;

  bool operator==(const OlhWireReport&) const = default;
};

/// Client-side randomizers. Each matches the corresponding oracle's
/// SubmitValue perturbation exactly (same probabilities, same Rng
/// consumption order), so a wire deployment is distributionally
/// identical to the in-process simulation.
GrrWireReport EncodeGrrReport(uint64_t domain, double eps, uint64_t value,
                              Rng& rng);
UnaryWireReport EncodeOueReport(uint64_t domain, double eps, uint64_t value,
                                Rng& rng);
UnaryWireReport EncodeSueReport(uint64_t domain, double eps, uint64_t value,
                                Rng& rng);
/// `g_override` forces the OLH hash range (0 = optimal e^eps + 1).
OlhWireReport EncodeOlhReport(uint64_t domain, double eps, uint64_t value,
                              Rng& rng, uint64_t g_override = 0);

/// Envelope framing. The OUE/SUE serializers take the tag (kOue or kSue)
/// since the two share the unary payload shape.
std::vector<uint8_t> SerializeGrrReport(const GrrWireReport& report);
std::vector<uint8_t> SerializeUnaryReport(MechanismTag tag,
                                          const UnaryWireReport& report);
std::vector<uint8_t> SerializeOlhReport(const OlhWireReport& report);

/// Total parsers: envelope errors pass through; a structurally valid
/// envelope with a malformed payload (bad varint, packed-length
/// mismatch, nonzero padding bits) returns kBadPayload.
ParseError ParseGrrReport(std::span<const uint8_t> bytes,
                          GrrWireReport* report);
ParseError ParseUnaryReport(MechanismTag tag, std::span<const uint8_t> bytes,
                            UnaryWireReport* report);
ParseError ParseOlhReport(std::span<const uint8_t> bytes,
                          OlhWireReport* report);

}  // namespace ldp::protocol

#endif  // LDPRANGE_PROTOCOL_ORACLE_WIRE_H_
