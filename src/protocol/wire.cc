#include "protocol/wire.h"

#include <bit>

#include "common/check.h"

namespace ldp::protocol {

void AppendU8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendF64(std::vector<uint8_t>& out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

void AppendVarU64(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

void AppendLengthPrefixedBytes(std::vector<uint8_t>& out,
                               std::span<const uint8_t> bytes) {
  LDP_CHECK_LE(bytes.size(), size_t{UINT32_MAX});
  AppendU32(out, static_cast<uint32_t>(bytes.size()));
  out.insert(out.end(), bytes.begin(), bytes.end());
}

bool WireReader::Take(size_t n, const uint8_t** p) {
  // Remaining() (not position_ + n) so a huge forged n cannot wrap.
  if (!ok_ || n > Remaining()) {
    ok_ = false;
    return false;
  }
  *p = bytes_.data() + position_;
  position_ += n;
  return true;
}

bool WireReader::ReadU8(uint8_t* v) {
  const uint8_t* p = nullptr;
  if (!Take(1, &p)) return false;
  *v = p[0];
  return true;
}

bool WireReader::ReadU32(uint32_t* v) {
  const uint8_t* p = nullptr;
  if (!Take(4, &p)) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  *v = out;
  return true;
}

bool WireReader::ReadU64(uint64_t* v) {
  const uint8_t* p = nullptr;
  if (!Take(8, &p)) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  *v = out;
  return true;
}

bool WireReader::ReadF64(double* v) {
  uint64_t bits = 0;
  if (!ReadU64(&bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

bool WireReader::ReadVarU64(uint64_t* v) {
  if (!ok_) return false;
  uint64_t out = 0;
  for (int i = 0; i < 10; ++i) {
    const uint8_t* p = nullptr;
    if (!Take(1, &p)) return false;
    uint8_t byte = *p;
    // Byte 10 holds bits 63..69: anything beyond bit 63 overflows u64.
    if (i == 9 && byte > 0x01) {
      ok_ = false;
      return false;
    }
    out |= static_cast<uint64_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) {
      *v = out;
      return true;
    }
  }
  ok_ = false;  // unterminated group sequence
  return false;
}

bool WireReader::ReadBytes(size_t n, std::span<const uint8_t>* out) {
  const uint8_t* p = nullptr;
  if (!Take(n, &p)) return false;
  *out = std::span<const uint8_t>(p, n);
  return true;
}

bool WireReader::ReadLengthPrefixedBytes(std::span<const uint8_t>* out) {
  uint32_t len = 0;
  if (!ReadU32(&len)) return false;
  return ReadBytes(len, out);
}

}  // namespace ldp::protocol
