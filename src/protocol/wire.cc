#include "protocol/wire.h"

namespace ldp::protocol {

void AppendU8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool WireReader::Take(size_t n, const uint8_t** p) {
  if (!ok_ || position_ + n > bytes_.size()) {
    ok_ = false;
    return false;
  }
  *p = bytes_.data() + position_;
  position_ += n;
  return true;
}

bool WireReader::ReadU8(uint8_t* v) {
  const uint8_t* p = nullptr;
  if (!Take(1, &p)) return false;
  *v = p[0];
  return true;
}

bool WireReader::ReadU32(uint32_t* v) {
  const uint8_t* p = nullptr;
  if (!Take(4, &p)) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  *v = out;
  return true;
}

bool WireReader::ReadU64(uint64_t* v) {
  const uint8_t* p = nullptr;
  if (!Take(8, &p)) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  *v = out;
  return true;
}

}  // namespace ldp::protocol
