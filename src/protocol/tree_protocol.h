// Deployable client/server split of the hierarchical-histogram mechanism
// with the HRR primitive ("TreeHRR" in the paper's Figure 4) — the
// low-communication HH variant a deployment would actually ship: the paper
// notes TreeHRRCI "requires vastly reduced communication for each user at
// the cost of only a slight increase in error" versus TreeOUECI.
//
// Each report: sampled tree level + one HRR coefficient sample for that
// level's one-hot node indicator — framed under the versioned v2 envelope
// (18 bytes, or the legacy unframed 11-byte v1 format after a downgrade).
// The server validates, aggregates per level, debiases, applies Section
// 4.5 consistency, and serves range / prefix / quantile queries.

#ifndef LDPRANGE_PROTOCOL_TREE_PROTOCOL_H_
#define LDPRANGE_PROTOCOL_TREE_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/random.h"
#include "core/badic.h"
#include "frequency/hrr.h"
#include "protocol/envelope.h"
#include "service/aggregator_server.h"

namespace ldp::protocol {

/// An unserialized TreeHRR report.
struct TreeHrrReport {
  uint32_t level = 1;  // 1..height, sampled uniformly
  HrrReport inner;
};

/// Serializes one report. v2 (default): envelope + payload [level u8]
/// [index u64][sign u8], 18 bytes. v1: legacy [tag 0x03][level][index]
/// [sign], 11 bytes.
std::vector<uint8_t> SerializeTreeHrrReport(
    const TreeHrrReport& report, uint8_t wire_version = kWireVersionV2);

/// Parses and validates either wire version with an explicit error code.
ParseError ParseTreeHrrReportDetailed(std::span<const uint8_t> bytes,
                                      TreeHrrReport* report);

/// Convenience wrapper: true iff ParseTreeHrrReportDetailed returns kOk.
bool ParseTreeHrrReport(std::span<const uint8_t> bytes,
                        TreeHrrReport* report);

/// One framed v2 batch message (kTreeHrrBatch):
/// payload = [count varint][count x ([level u8][index u64][sign u8])].
std::vector<uint8_t> SerializeTreeHrrReportBatch(
    std::span<const TreeHrrReport> reports);

/// Parses a v2 batch message; per-item validation failures are skipped
/// and counted in `malformed` (may be null), structural failures reject
/// the whole message.
ParseError ParseTreeHrrReportBatch(std::span<const uint8_t> bytes,
                                   std::vector<TreeHrrReport>* reports,
                                   uint64_t* malformed = nullptr);

/// Client-side encoder. Wire-version selection and downgrade negotiation
/// come from DowngradableClient.
class TreeHrrClient : public DowngradableClient {
 public:
  TreeHrrClient(uint64_t domain, uint64_t fanout, double eps);

  const TreeShape& shape() const { return shape_; }

  TreeHrrReport Encode(uint64_t value, Rng& rng) const;
  std::vector<uint8_t> EncodeSerialized(uint64_t value, Rng& rng) const;

  /// Batched encode (a simulation driver standing in for many devices):
  /// one report per value, drawn exactly as the Encode loop would.
  std::vector<TreeHrrReport> EncodeUsers(std::span<const uint64_t> values,
                                         Rng& rng) const;

  /// Batched encode + one framed v2 batch message (v2-only).
  std::vector<uint8_t> EncodeUsersSerialized(std::span<const uint64_t> values,
                                             Rng& rng) const;

 private:
  TreeShape shape_;
  double eps_;
};

/// Server-side aggregator with optional constrained inference. Ingestion
/// accounting, finalize discipline, and quantile search come from
/// service::AggregatorServer.
class TreeHrrServer final : public service::AggregatorServer {
 public:
  TreeHrrServer(uint64_t domain, uint64_t fanout, double eps,
                bool consistency = true);

  std::string Name() const override { return "TreeHrr"; }
  const TreeShape& shape() const { return shape_; }
  uint64_t domain() const override { return shape_.domain(); }

  /// Ingests one report; false (counted) on out-of-range level/index.
  bool Absorb(const TreeHrrReport& report);
  bool AbsorbSerialized(std::span<const uint8_t> bytes) override;

  /// Batched ingestion; returns the number of accepted reports (rejects
  /// are counted per report, exactly as the Absorb loop would).
  uint64_t AbsorbBatch(std::span<const TreeHrrReport> reports);

  ParseError DoAbsorbBatchSerialized(std::span<const uint8_t> bytes,
                                   uint64_t* accepted) override;

  double RangeQuery(uint64_t a, uint64_t b) const override;
  /// Uncertainty from Theorem 4.3 (Eq. 2 after constrained inference):
  /// the HH_B worst-case envelope for a length-r range.
  RangeEstimate RangeQueryWithUncertainty(uint64_t a,
                                          uint64_t b) const override;
  std::vector<double> EstimateFrequencies() const override;

 private:
  void DoFinalize() override;
  service::StateKind state_kind() const override {
    return service::StateKind::kTree;
  }
  uint64_t state_fanout() const override { return shape_.fanout(); }
  double state_epsilon() const override { return eps_; }
  void AppendStateBody(std::vector<uint8_t>& out) const override;
  bool RestoreStateBody(std::span<const uint8_t> body) override;
  std::unique_ptr<service::AggregatorServer> DoCloneEmpty() const override;
  service::MergeStatus DoMergeFrom(service::AggregatorServer& other) override;

  TreeShape shape_;
  double eps_;
  bool consistency_;
  std::vector<std::unique_ptr<HrrOracle>> level_oracles_;
  std::vector<std::vector<double>> estimates_;
};

}  // namespace ldp::protocol

#endif  // LDPRANGE_PROTOCOL_TREE_PROTOCOL_H_
