// Deployable client/server split of the hierarchical-histogram mechanism
// with the HRR primitive ("TreeHRR" in the paper's Figure 4) — the
// low-communication HH variant a deployment would actually ship: the paper
// notes TreeHRRCI "requires vastly reduced communication for each user at
// the cost of only a slight increase in error" versus TreeOUECI.
//
// Each report: sampled tree level + one HRR coefficient sample for that
// level's one-hot node indicator — framed under the versioned v2 envelope
// (18 bytes, or the legacy unframed 11-byte v1 format after a downgrade).
// The server validates, aggregates per level, debiases, applies Section
// 4.5 consistency, and serves range / prefix / quantile queries.

#ifndef LDPRANGE_PROTOCOL_TREE_PROTOCOL_H_
#define LDPRANGE_PROTOCOL_TREE_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/random.h"
#include "core/badic.h"
#include "frequency/hrr.h"
#include "protocol/envelope.h"

namespace ldp::protocol {

/// An unserialized TreeHRR report.
struct TreeHrrReport {
  uint32_t level = 1;  // 1..height, sampled uniformly
  HrrReport inner;
};

/// Serializes one report. v2 (default): envelope + payload [level u8]
/// [index u64][sign u8], 18 bytes. v1: legacy [tag 0x03][level][index]
/// [sign], 11 bytes.
std::vector<uint8_t> SerializeTreeHrrReport(
    const TreeHrrReport& report, uint8_t wire_version = kWireVersionV2);

/// Parses and validates either wire version with an explicit error code.
ParseError ParseTreeHrrReportDetailed(std::span<const uint8_t> bytes,
                                      TreeHrrReport* report);

/// Convenience wrapper: true iff ParseTreeHrrReportDetailed returns kOk.
bool ParseTreeHrrReport(std::span<const uint8_t> bytes,
                        TreeHrrReport* report);

/// One framed v2 batch message (kTreeHrrBatch):
/// payload = [count varint][count x ([level u8][index u64][sign u8])].
std::vector<uint8_t> SerializeTreeHrrReportBatch(
    std::span<const TreeHrrReport> reports);

/// Parses a v2 batch message; per-item validation failures are skipped
/// and counted in `malformed` (may be null), structural failures reject
/// the whole message.
ParseError ParseTreeHrrReportBatch(std::span<const uint8_t> bytes,
                                   std::vector<TreeHrrReport>* reports,
                                   uint64_t* malformed = nullptr);

/// Client-side encoder.
class TreeHrrClient {
 public:
  TreeHrrClient(uint64_t domain, uint64_t fanout, double eps);

  const TreeShape& shape() const { return shape_; }

  /// Wire version EncodeSerialized emits (default kWireVersionV2).
  uint8_t wire_version() const { return wire_version_; }
  void set_wire_version(uint8_t version);

  /// Downgrade hook: picks the highest version this client speaks that
  /// the server accepts; false (version unchanged) when none exists.
  bool NegotiateWireVersion(std::span<const uint8_t> server_accepted);

  TreeHrrReport Encode(uint64_t value, Rng& rng) const;
  std::vector<uint8_t> EncodeSerialized(uint64_t value, Rng& rng) const;

  /// Batched encode (a simulation driver standing in for many devices):
  /// one report per value, drawn exactly as the Encode loop would.
  std::vector<TreeHrrReport> EncodeUsers(std::span<const uint64_t> values,
                                         Rng& rng) const;

  /// Batched encode + one framed v2 batch message (v2-only).
  std::vector<uint8_t> EncodeUsersSerialized(std::span<const uint64_t> values,
                                             Rng& rng) const;

 private:
  TreeShape shape_;
  double eps_;
  uint8_t wire_version_ = kWireVersionV2;
};

/// Server-side aggregator with optional constrained inference.
class TreeHrrServer {
 public:
  TreeHrrServer(uint64_t domain, uint64_t fanout, double eps,
                bool consistency = true);

  TreeHrrServer(const TreeHrrServer&) = delete;
  TreeHrrServer& operator=(const TreeHrrServer&) = delete;

  const TreeShape& shape() const { return shape_; }
  uint64_t domain() const { return shape_.domain(); }

  /// Wire versions this server's Absorb path accepts.
  static std::span<const uint8_t> AcceptedWireVersions() {
    return ServerAcceptedVersions();
  }

  /// Ingests one report; false (counted) on out-of-range level/index.
  bool Absorb(const TreeHrrReport& report);
  bool AbsorbSerialized(std::span<const uint8_t> bytes);

  /// Batched ingestion; returns the number of accepted reports (rejects
  /// are counted per report, exactly as the Absorb loop would).
  uint64_t AbsorbBatch(std::span<const TreeHrrReport> reports);

  /// Parses + ingests one framed v2 batch message (see
  /// FlatHrrServer::AbsorbBatchSerialized for the accounting contract).
  ParseError AbsorbBatchSerialized(std::span<const uint8_t> bytes,
                                   uint64_t* accepted = nullptr);

  uint64_t accepted_reports() const { return accepted_; }
  uint64_t rejected_reports() const { return rejected_; }

  void Finalize();
  double RangeQuery(uint64_t a, uint64_t b) const;
  std::vector<double> EstimateFrequencies() const;
  uint64_t QuantileQuery(double phi) const;

 private:
  TreeShape shape_;
  bool consistency_;
  std::vector<std::unique_ptr<HrrOracle>> level_oracles_;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
  bool finalized_ = false;
  std::vector<std::vector<double>> estimates_;
};

}  // namespace ldp::protocol

#endif  // LDPRANGE_PROTOCOL_TREE_PROTOCOL_H_
