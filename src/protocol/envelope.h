// Versioned, framed message envelope for the LDP report wire protocol.
//
// Every v2 message — single report, batched reports, or a future
// mechanism's payload — starts with the same 8-byte header:
//
//   offset  size  field
//   0       2     magic "LR" (0x4C 0x52)
//   2       1     version (kWireVersionV2 = 2)
//   3       1     mechanism_tag (MechanismTag)
//   4       4     payload_len, u32 little-endian
//   8       ...   payload (exactly payload_len bytes, layout per tag)
//
// Version 1 is the seed's unframed fixed-width format (a bare mechanism
// tag byte followed by the report fields, see src/protocol/*_protocol.cc);
// it has no envelope, and servers keep a legacy decode path for it so old
// captures still parse. The v1 tag bytes (0x01..0x03) can never collide
// with a v2 message because the first magic byte is 0x4C.
//
// Decoding is total over arbitrary bytes: every failure maps to an
// explicit ParseError, never a crash or an out-of-bounds read, and no
// allocation is driven by attacker-controlled lengths (the payload is
// returned as a span into the caller's buffer after the length has been
// validated against what is actually present).

#ifndef LDPRANGE_PROTOCOL_ENVELOPE_H_
#define LDPRANGE_PROTOCOL_ENVELOPE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ldp::protocol {

/// Wire protocol versions. kWireVersionV1 is the seed's unframed format
/// (kept decodable forever); kWireVersionV2 is the framed envelope above.
inline constexpr uint8_t kWireVersionV1 = 1;
inline constexpr uint8_t kWireVersionV2 = 2;

/// The two magic bytes every v2 message starts with.
inline constexpr uint8_t kEnvelopeMagic0 = 0x4C;  // 'L'
inline constexpr uint8_t kEnvelopeMagic1 = 0x52;  // 'R'

/// Envelope header size in bytes (magic + version + tag + payload_len).
inline constexpr size_t kEnvelopeHeaderSize = 8;

/// Identifies the mechanism (and message shape) of a payload. Single
/// reports use the low range; batched messages set the high bit, so
/// `tag & 0x7F` names the mechanism either way. Values are wire format —
/// never renumber.
enum class MechanismTag : uint8_t {
  kFlatHrr = 0x01,  // [index u64][sign u8]
  kHaarHrr = 0x02,  // [level u8][index u64][sign u8]
  kTreeHrr = 0x03,  // [level u8][index u64][sign u8]
  kGrr = 0x04,      // [value varint]
  kOue = 0x05,      // [num_bits varint][packed bits, length-prefixed]
  kSue = 0x06,      // [num_bits varint][packed bits, length-prefixed]
  kOlh = 0x07,      // [seed u64][cell varint]
  // AHEAD two-phase reports and the server -> client adaptive-tree
  // broadcast between the phases (src/protocol/ahead_protocol.h).
  kAheadReport = 0x08,  // [phase u8][level u8][node u64]
  kAheadTree = 0x09,    // [domain varint][fanout varint][count varint]
                        //   [count x (depth u8, index varint)]
  // Multidimensional grid reports (src/protocol/multidim_protocol.h): the
  // user's sampled level tuple plus their OLH report for that tuple's
  // product grid.
  kMultiDimReport = 0x0A,  // [dims u8][dims x level u8][seed u64][cell u32]
  // Streaming ingestion framing (service/stream_wire.h): a session of
  // chunked report batches, reassembled by the aggregator service. The
  // chunk's nested bytes are themselves a complete framed batch message.
  kStreamBegin = 0x10,  // [session u64][server u64]
  kStreamChunk = 0x11,  // [session u64][sequence varint][nested bytes]
  kStreamEnd = 0x12,    // [session u64][chunk_count varint][flags u8]
  // Query plane (service/stream_wire.h): range queries and their answers
  // as serialized bytes — the first server -> client result messages.
  kRangeQueryRequest = 0x20,   // [query u64][server u64][count varint]
                               //   [count x (lo varint, hi varint)]
  kRangeQueryResponse = 0x21,  // [query u64][status u8][count varint]
                               //   [count x (estimate f64, variance f64)]
  // Multidim query plane: axis-aligned box queries (one interval per axis)
  // and their answers.
  kMultiDimQuery = 0x22,          // [query u64][server u64][dims u8]
                                  //   [count varint][count x dims x
                                  //   (lo varint, hi varint)]
  kMultiDimQueryResponse = 0x23,  // [query u64][status u8][count varint]
                                  //   [count x (estimate f64, variance f64)]
  // Stats plane (obs/stats_wire.h): metrics scrape over the same wire —
  // counters, gauges and sparse log2 histograms as typed messages.
  kStatsQuery = 0x24,     // [query u64][flags u8]
  kStatsResponse = 0x25,  // [query u64][status u8][format u8]
                          //   [3 x named-entry sections]
  // Distributed fan-in (service/state_wire.h): one server's partial
  // aggregate state as a canonical snapshot, the shard -> query-node
  // push that carries it, and the typed ack.
  kStateSnapshot = 0x30,  // [kind u8][dims u8][domain varint]
                          //   [fanout varint][eps f64][accepted varint]
                          //   [rejected varint][state body]
  kStateMerge = 0x31,     // [merge u64][server u64][shard varint]
                          //   [shards varint][flags u8][nested snapshot]
  kStateMergeResponse = 0x32,  // [merge u64][status u8][received varint]
  // Batched forms: payload = [count varint][count x single-report payload].
  kFlatHrrBatch = 0x81,
  kHaarHrrBatch = 0x82,
  kTreeHrrBatch = 0x83,
  kAheadReportBatch = 0x88,
  kMultiDimReportBatch = 0x8A,
};

/// Wire ceiling on the dimensionality of multidim messages (reports and
/// box queries). The mechanism's memory grows as (D·B/(B-1))^d, so real
/// configurations sit at d = 2..3; the cap only bounds what a parser
/// will accept and allocate for.
inline constexpr uint32_t kMaxWireDimensions = 16;

/// True for every tag DecodeEnvelope will admit.
bool IsKnownMechanismTag(uint8_t tag);

/// Human-readable tag name ("FlatHrr", "HaarHrrBatch", ...); "?" for
/// unknown values.
std::string MechanismTagName(MechanismTag tag);

/// Why a decode failed. kOk is zero so the enum converts naturally to
/// "did anything go wrong".
enum class ParseError : uint8_t {
  kOk = 0,
  kTruncated,            // shorter than the 8-byte header
  kBadMagic,             // first two bytes are not "LR"
  kUnsupportedVersion,   // version this build does not speak
  kUnknownMechanism,     // mechanism_tag not in MechanismTag
  kLengthMismatch,       // payload_len exceeds the bytes present
  kTrailingJunk,         // bytes left over after the declared payload
  kBadPayload,           // envelope fine, payload malformed for its tag
};

/// Stable identifier for logs and tests ("ok", "bad_magic", ...).
std::string ParseErrorName(ParseError error);

/// A decoded v2 envelope. `payload` is a view into the buffer handed to
/// DecodeEnvelope — it borrows, the caller's bytes must outlive it.
struct Envelope {
  uint8_t version = kWireVersionV2;
  MechanismTag mechanism = MechanismTag::kFlatHrr;
  std::span<const uint8_t> payload;
};

/// Frames `payload` under an 8-byte v2 header.
std::vector<uint8_t> EncodeEnvelope(MechanismTag mechanism,
                                    std::span<const uint8_t> payload);

/// Appends just the 8-byte header for a payload of `payload_len` bytes —
/// the zero-copy path for encoders that then append the payload in place.
void AppendEnvelopeHeader(std::vector<uint8_t>& out, MechanismTag mechanism,
                          uint32_t payload_len);

/// Parses a complete v2 message. Exact framing: the buffer must hold the
/// header plus exactly payload_len payload bytes.
ParseError DecodeEnvelope(std::span<const uint8_t> bytes, Envelope* out);

/// True when `bytes` starts with the v2 magic — the cheap dispatch test
/// servers use to route between the v2 and legacy v1 decode paths.
bool LooksLikeEnvelope(std::span<const uint8_t> bytes);

/// The wire versions this build's servers accept, newest last. Publish
/// out-of-band (or in a hello message) so clients can downgrade.
std::span<const uint8_t> ServerAcceptedVersions();

/// Version negotiation: the highest version present in both lists, or 0
/// when the sets are disjoint (client and server cannot talk).
uint8_t NegotiateWireVersion(std::span<const uint8_t> client_supported,
                             std::span<const uint8_t> server_accepted);

/// Client-side wire-version state shared by the downgradable protocol
/// clients (flat/haar/tree) — each used to carry its own copy of this
/// logic. Subclasses emit `wire_version()` from their Encode*Serialized
/// paths; NegotiateWireVersion() is the downgrade hook against a server's
/// advertised AcceptedWireVersions().
class DowngradableClient {
 public:
  /// Wire version the client's serializers emit (default kWireVersionV2).
  uint8_t wire_version() const { return wire_version_; }
  void set_wire_version(uint8_t version);

  /// Picks the highest version this client speaks that the server
  /// accepts. Returns false — leaving the current version untouched —
  /// when no common version exists.
  bool NegotiateWireVersion(std::span<const uint8_t> server_accepted);

 protected:
  DowngradableClient() = default;
  ~DowngradableClient() = default;

  uint8_t wire_version_ = kWireVersionV2;
};

}  // namespace ldp::protocol

#endif  // LDPRANGE_PROTOCOL_ENVELOPE_H_
