// Minimal byte-level wire format helpers for LDP report serialization.
//
// A real deployment of the paper's protocols ships each user's report over
// the network; this module provides the (deliberately boring) fixed-width
// little-endian encoding plus LEB128 varints and length-prefixed byte
// strings used by src/protocol clients and servers. Readers are
// bounds-checked and never abort on malformed input: a server must reject
// garbage, not crash on it.

#ifndef LDPRANGE_PROTOCOL_WIRE_H_
#define LDPRANGE_PROTOCOL_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ldp::protocol {

/// Appends fixed-width little-endian integers to `out`.
void AppendU8(std::vector<uint8_t>& out, uint8_t v);
void AppendU32(std::vector<uint8_t>& out, uint32_t v);
void AppendU64(std::vector<uint8_t>& out, uint64_t v);

/// Appends an IEEE-754 double as its 8-byte little-endian bit pattern
/// (bit-exact round trip, including NaN payloads and infinities). Used by
/// the query plane to ship estimates and variances.
void AppendF64(std::vector<uint8_t>& out, double v);

/// Appends `v` as an unsigned LEB128 varint (1..10 bytes, 7 bits per
/// byte, low group first).
void AppendVarU64(std::vector<uint8_t>& out, uint64_t v);

/// Appends a u32 byte count followed by the bytes themselves. The
/// counterpart of WireReader::ReadLengthPrefixedBytes. Requires
/// bytes.size() <= UINT32_MAX.
void AppendLengthPrefixedBytes(std::vector<uint8_t>& out,
                               std::span<const uint8_t> bytes);

/// Sequential bounds-checked reader over a byte buffer. All Read*
/// methods return false (leaving the output untouched) once any read has
/// failed or the buffer is exhausted; a failed reader stays failed — no
/// later Read*/Take can succeed or advance the position. The reader
/// borrows the buffer; it must outlive the reader.
class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);

  /// Reads an IEEE-754 double from its 8-byte little-endian bit pattern.
  bool ReadF64(double* v);

  /// Reads an unsigned LEB128 varint (at most 10 bytes; the tenth byte
  /// may only contribute the top valuation bit — anything above 2^64-1
  /// or an unterminated group sequence fails the reader).
  bool ReadVarU64(uint64_t* v);

  /// Borrows the next `n` bytes as a span into the underlying buffer
  /// (no copy). Fails without advancing when fewer than `n` remain.
  bool ReadBytes(size_t n, std::span<const uint8_t>* out);

  /// Reads a u32 byte count followed by that many bytes (borrowed, no
  /// copy). The count is validated against Remaining() *before* anything
  /// is materialized, so a forged length near UINT32_MAX fails cleanly
  /// without allocation.
  bool ReadLengthPrefixedBytes(std::span<const uint8_t>* out);

  /// True iff no read has failed so far.
  bool ok() const { return ok_; }

  /// Bytes not yet consumed. Unlike AtEnd() this is meaningful on a
  /// failed reader too (the position freezes at the first failure).
  size_t Remaining() const { return bytes_.size() - position_; }

  /// True iff every read so far succeeded AND the buffer is fully
  /// consumed — trailing junk is a parse error for fixed-format reports.
  bool AtEnd() const { return ok_ && position_ == bytes_.size(); }

 private:
  bool Take(size_t n, const uint8_t** p);

  std::span<const uint8_t> bytes_;
  size_t position_ = 0;
  bool ok_ = true;
};

}  // namespace ldp::protocol

#endif  // LDPRANGE_PROTOCOL_WIRE_H_
