// Minimal byte-level wire format helpers for LDP report serialization.
//
// A real deployment of the paper's protocols ships each user's report over
// the network; this module provides the (deliberately boring) fixed-width
// little-endian encoding used by src/protocol clients and servers. Readers
// are bounds-checked and never abort on malformed input: a server must
// reject garbage, not crash on it.

#ifndef LDPRANGE_PROTOCOL_WIRE_H_
#define LDPRANGE_PROTOCOL_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ldp::protocol {

/// Appends fixed-width little-endian integers to `out`.
void AppendU8(std::vector<uint8_t>& out, uint8_t v);
void AppendU32(std::vector<uint8_t>& out, uint32_t v);
void AppendU64(std::vector<uint8_t>& out, uint64_t v);

/// Sequential bounds-checked reader over a byte buffer. All Read*
/// methods return false (leaving the output untouched) once the buffer
/// is exhausted; `ok()` stays false afterwards.
class WireReader {
 public:
  explicit WireReader(const std::vector<uint8_t>& bytes)
      : bytes_(bytes) {}

  bool ReadU8(uint8_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);

  /// True iff every read so far succeeded AND the buffer is fully
  /// consumed — trailing junk is a parse error for fixed-format reports.
  bool AtEnd() const { return ok_ && position_ == bytes_.size(); }

 private:
  bool Take(size_t n, const uint8_t** p);

  const std::vector<uint8_t>& bytes_;
  size_t position_ = 0;
  bool ok_ = true;
};

}  // namespace ldp::protocol

#endif  // LDPRANGE_PROTOCOL_WIRE_H_
