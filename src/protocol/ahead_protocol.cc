#include "protocol/ahead_protocol.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/consistency.h"
#include "frequency/frequency_oracle.h"
#include "frequency/grr.h"
#include "protocol/wire.h"

namespace ldp::protocol {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr size_t kItemSize = 10;  // [phase u8][level u8][node u64]

void AppendItem(std::vector<uint8_t>& out, const AheadWireReport& report) {
  AppendU8(out, report.phase);
  AppendU8(out, static_cast<uint8_t>(report.level));
  AppendU64(out, report.node);
}

// Decodes one fixed-size item, consuming the full slot before validating
// so batch readers stay aligned across a malformed item.
bool ReadItem(WireReader& reader, AheadWireReport* report) {
  uint8_t phase = 0;
  uint8_t level = 0;
  uint64_t node = 0;
  if (!reader.ReadU8(&phase) || !reader.ReadU8(&level) ||
      !reader.ReadU64(&node)) {
    return false;
  }
  if (phase != 1 && phase != 2) return false;
  if (level == 0) return false;
  report->phase = phase;
  report->level = level;
  report->node = node;
  return true;
}

}  // namespace

std::vector<uint8_t> SerializeAheadReport(const AheadWireReport& report) {
  std::vector<uint8_t> out;
  out.reserve(kEnvelopeHeaderSize + kItemSize);
  AppendEnvelopeHeader(out, MechanismTag::kAheadReport, kItemSize);
  AppendItem(out, report);
  return out;
}

ParseError ParseAheadReportDetailed(std::span<const uint8_t> bytes,
                                    AheadWireReport* report) {
  Envelope env;
  ParseError err = DecodeEnvelope(bytes, &env);
  if (err != ParseError::kOk) return err;
  if (env.mechanism != MechanismTag::kAheadReport) {
    return ParseError::kBadPayload;
  }
  if (env.payload.size() != kItemSize) return ParseError::kBadPayload;
  WireReader reader(env.payload);
  AheadWireReport out;
  if (!ReadItem(reader, &out)) return ParseError::kBadPayload;
  *report = out;
  return ParseError::kOk;
}

bool ParseAheadReport(std::span<const uint8_t> bytes,
                      AheadWireReport* report) {
  return ParseAheadReportDetailed(bytes, report) == ParseError::kOk;
}

std::vector<uint8_t> SerializeAheadReportBatch(
    std::span<const AheadWireReport> reports) {
  std::vector<uint8_t> payload;
  payload.reserve(10 + reports.size() * kItemSize);
  AppendVarU64(payload, reports.size());
  for (const AheadWireReport& report : reports) {
    AppendItem(payload, report);
  }
  return EncodeEnvelope(MechanismTag::kAheadReportBatch, payload);
}

ParseError ParseAheadReportBatch(std::span<const uint8_t> bytes,
                                 std::vector<AheadWireReport>* reports,
                                 uint64_t* malformed) {
  Envelope env;
  ParseError err = DecodeEnvelope(bytes, &env);
  if (err != ParseError::kOk) return err;
  if (env.mechanism != MechanismTag::kAheadReportBatch) {
    return ParseError::kBadPayload;
  }
  WireReader reader(env.payload);
  uint64_t count = 0;
  if (!reader.ReadVarU64(&count)) return ParseError::kBadPayload;
  if (count > reader.Remaining() / kItemSize ||
      reader.Remaining() != count * kItemSize) {
    return ParseError::kBadPayload;
  }
  reports->clear();
  reports->reserve(count);
  uint64_t bad = 0;
  for (uint64_t i = 0; i < count; ++i) {
    AheadWireReport report;
    if (ReadItem(reader, &report)) {
      reports->push_back(report);
    } else {
      ++bad;
    }
  }
  if (malformed != nullptr) *malformed = bad;
  return ParseError::kOk;
}

std::vector<uint8_t> SerializeAheadTree(uint64_t domain, uint64_t fanout,
                                        const AdaptiveTree& tree) {
  std::vector<TreeNode> splits = tree.SplitNodes();
  std::vector<uint8_t> payload;
  AppendVarU64(payload, domain);
  AppendVarU64(payload, fanout);
  AppendVarU64(payload, splits.size());
  for (const TreeNode& s : splits) {
    AppendU8(payload, static_cast<uint8_t>(s.level));
    AppendVarU64(payload, s.index);
  }
  return EncodeEnvelope(MechanismTag::kAheadTree, payload);
}

ParseError ParseAheadTree(std::span<const uint8_t> bytes, uint64_t* domain,
                          uint64_t* fanout,
                          std::optional<AdaptiveTree>* tree) {
  Envelope env;
  ParseError err = DecodeEnvelope(bytes, &env);
  if (err != ParseError::kOk) return err;
  if (env.mechanism != MechanismTag::kAheadTree) {
    return ParseError::kBadPayload;
  }
  WireReader reader(env.payload);
  uint64_t d = 0;
  uint64_t b = 0;
  uint64_t count = 0;
  if (!reader.ReadVarU64(&d) || !reader.ReadVarU64(&b) ||
      !reader.ReadVarU64(&count)) {
    return ParseError::kBadPayload;
  }
  if (d < 2 || b < 2 || d > kMaxAheadTreeDomain ||
      b > kMaxAheadTreeFanout) {
    return ParseError::kBadPayload;
  }
  // Two bytes minimum per split entry; rejects forged counts before any
  // allocation sized by them. The node cap bounds what reconstruction may
  // allocate (every split contributes `fanout` children).
  if (count > reader.Remaining() / 2) return ParseError::kBadPayload;
  if (count > (kMaxAheadTreeNodes - 1) / b) return ParseError::kBadPayload;
  std::vector<TreeNode> splits;
  splits.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t level = 0;
    uint64_t index = 0;
    if (!reader.ReadU8(&level) || !reader.ReadVarU64(&index)) {
      return ParseError::kBadPayload;
    }
    splits.push_back(TreeNode{level, index});
  }
  if (!reader.AtEnd()) return ParseError::kBadPayload;
  TreeShape shape(d, b);
  std::optional<AdaptiveTree> parsed =
      AdaptiveTree::TryFromSplits(shape, splits);
  if (!parsed.has_value()) return ParseError::kBadPayload;
  *domain = d;
  *fanout = b;
  *tree = std::move(parsed);
  return ParseError::kOk;
}

// --- AheadClient ----------------------------------------------------------

AheadClient::AheadClient(uint64_t domain, uint64_t fanout, double eps)
    : shape_(domain, fanout), eps_(eps) {
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
}

const AdaptiveTree& AheadClient::tree() const {
  LDP_CHECK_MSG(tree_.has_value(), "no tree installed");
  return *tree_;
}

AheadWireReport AheadClient::EncodePhase1(uint64_t value, Rng& rng) const {
  LDP_CHECK_LT(value, shape_.domain());
  AheadWireReport report;
  report.phase = 1;
  report.level =
      1 + static_cast<uint32_t>(rng.UniformInt(shape_.height()));
  uint64_t node = shape_.NodeContaining(report.level, value);
  report.node =
      GrrPerturb(node, shape_.NodesAtLevel(report.level), eps_, rng);
  return report;
}

std::vector<uint8_t> AheadClient::EncodePhase1Serialized(uint64_t value,
                                                         Rng& rng) const {
  return SerializeAheadReport(EncodePhase1(value, rng));
}

bool AheadClient::AbsorbTreeDescription(std::span<const uint8_t> bytes) {
  uint64_t domain = 0;
  uint64_t fanout = 0;
  std::optional<AdaptiveTree> tree;
  if (ParseAheadTree(bytes, &domain, &fanout, &tree) != ParseError::kOk) {
    return false;
  }
  if (domain != shape_.domain() || fanout != shape_.fanout()) return false;
  tree_ = std::move(tree);
  return true;
}

void AheadClient::SetTree(AdaptiveTree tree) {
  LDP_CHECK(tree.shape().domain() == shape_.domain());
  LDP_CHECK(tree.shape().fanout() == shape_.fanout());
  tree_ = std::move(tree);
}

AheadWireReport AheadClient::EncodePhase2(uint64_t value, Rng& rng) const {
  LDP_CHECK_LT(value, shape_.domain());
  LDP_CHECK_MSG(tree_.has_value(), "phase 2 requires the tree broadcast");
  AheadWireReport report;
  report.phase = 2;
  report.level =
      1 + static_cast<uint32_t>(rng.UniformInt(tree_->num_levels()));
  uint64_t frontier = tree_->FrontierIndex(report.level, value);
  report.node = GrrPerturb(frontier, tree_->FrontierSize(report.level),
                           eps_, rng);
  return report;
}

std::vector<uint8_t> AheadClient::EncodePhase2Serialized(uint64_t value,
                                                         Rng& rng) const {
  return SerializeAheadReport(EncodePhase2(value, rng));
}

std::vector<AheadWireReport> AheadClient::EncodePhase2Users(
    std::span<const uint64_t> values, Rng& rng) const {
  std::vector<AheadWireReport> reports;
  reports.reserve(values.size());
  for (uint64_t value : values) {
    reports.push_back(EncodePhase2(value, rng));
  }
  return reports;
}

std::vector<uint8_t> AheadClient::EncodePhase2UsersSerialized(
    std::span<const uint64_t> values, Rng& rng) const {
  return SerializeAheadReportBatch(EncodePhase2Users(values, rng));
}

// --- AheadServer ----------------------------------------------------------

AheadServer::AheadServer(uint64_t domain, uint64_t fanout, double eps,
                         const AheadServerConfig& config)
    : shape_(domain, fanout),
      eps_(eps),
      config_(config),
      max_depth_(ResolveAheadDepthCap(shape_, config.max_depth)) {
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
  for (uint32_t l = 1; l <= shape_.height(); ++l) {
    phase1_counts_.emplace_back(shape_.NodesAtLevel(l), 0);
  }
}

const AdaptiveTree& AheadServer::tree() const {
  LDP_CHECK_MSG(tree_.has_value(), "tree not built yet");
  return *tree_;
}

std::span<const uint8_t> AheadServer::AcceptedWireVersions() const {
  static constexpr uint8_t kAccepted[] = {kWireVersionV2};
  return kAccepted;
}

bool AheadServer::Absorb(const AheadWireReport& report) {
  LDP_CHECK_MSG(!finalized_, "Absorb after Finalize");
  if (report.phase == 1) {
    // Phase-1 reports after the tree broadcast are stale: accepting them
    // would let a client influence a decomposition other clients already
    // encode against.
    if (tree_.has_value() || report.level == 0 ||
        report.level > shape_.height() ||
        report.node >= shape_.NodesAtLevel(report.level)) {
      stats_.CountRejected();
      return false;
    }
    ++phase1_counts_[report.level - 1][report.node];
    ++phase1_reports_;
  } else if (report.phase == 2) {
    if (!tree_.has_value() || report.level == 0 ||
        report.level > tree_->num_levels() ||
        report.node >= tree_->FrontierSize(report.level)) {
      stats_.CountRejected();
      return false;
    }
    ++level_counts_[report.level - 1][report.node];
    ++phase2_reports_;
  } else {
    stats_.CountRejected();
    return false;
  }
  stats_.CountAccepted();
  return true;
}

bool AheadServer::AbsorbSerialized(std::span<const uint8_t> bytes) {
  AheadWireReport report;
  if (!ParseAheadReport(bytes, &report)) {
    stats_.CountRejected();
    return false;
  }
  return Absorb(report);
}

uint64_t AheadServer::AbsorbBatch(std::span<const AheadWireReport> reports) {
  uint64_t accepted = 0;
  for (const AheadWireReport& report : reports) {
    if (Absorb(report)) ++accepted;
  }
  return accepted;
}

ParseError AheadServer::DoAbsorbBatchSerialized(std::span<const uint8_t> bytes,
                                              uint64_t* accepted) {
  return IngestBatchMessage<AheadWireReport>(
      bytes,
      [](std::span<const uint8_t> b, std::vector<AheadWireReport>* r,
         uint64_t* m) { return ParseAheadReportBatch(b, r, m); },
      [this](std::span<const AheadWireReport> r) { return AbsorbBatch(r); },
      accepted);
}

std::vector<uint8_t> AheadServer::BuildTree() {
  if (tree_.has_value()) return tree_message_;
  // Debias each complete-tree level's GRR tallies, then smooth with the
  // Section 4.5 constrained inference (the same embedded-HH_B shape the
  // in-process mechanism uses for phase 1).
  std::vector<std::vector<double>> estimates(shape_.height() + 1);
  estimates[0] = {1.0};
  for (uint32_t l = 1; l <= shape_.height(); ++l) {
    const std::vector<uint64_t>& counts = phase1_counts_[l - 1];
    uint64_t n_l = 0;
    for (uint64_t c : counts) n_l += c;
    estimates[l] = GrrDebias(counts, n_l, eps_);
  }
  EnforceHierarchicalConsistency(estimates, shape_.fanout());
  // Same criterion as AheadMechanism::Finalize: split while the node's
  // mass clears the phase-2 noise floor. The server cannot know the
  // phase-2 population before broadcasting the tree, so it assumes the
  // deployment sends phases of comparable size (threshold_scale is the
  // tuning knob when that is off); the oracle-shared bound V_F stands in
  // for the frontier-size-dependent GRR variance.
  double phase2_level_reports = std::max(
      1.0, static_cast<double>(phase1_reports_) / max_depth_);
  double theta = config_.threshold_scale * 2.0 *
                 std::sqrt(OracleVariance(eps_, phase2_level_reports));
  bool no_signal = phase1_reports_ == 0;
  auto should_split = [&](const TreeNode& n) {
    if (config_.threshold_scale <= 0.0 || no_signal) return true;
    return estimates[n.level][n.index] > theta;
  };
  tree_ = AdaptiveTree::Grow(shape_, max_depth_, should_split);
  level_counts_.clear();
  for (uint32_t l = 1; l <= tree_->num_levels(); ++l) {
    level_counts_.emplace_back(tree_->FrontierSize(l), 0);
  }
  tree_message_ =
      SerializeAheadTree(shape_.domain(), shape_.fanout(), *tree_);
  return tree_message_;
}

bool AheadServer::InstallTree(std::span<const uint8_t> bytes) {
  if (finalized_) return false;
  uint64_t domain = 0;
  uint64_t fanout = 0;
  std::optional<AdaptiveTree> tree;
  if (ParseAheadTree(bytes, &domain, &fanout, &tree) != ParseError::kOk) {
    return false;
  }
  if (domain != shape_.domain() || fanout != shape_.fanout()) return false;
  // Re-serialize so tree_message_ is always the canonical BFS form
  // regardless of how the incoming bytes ordered their splits — merged
  // shards compare trees by these bytes.
  std::vector<uint8_t> canonical = SerializeAheadTree(domain, fanout, *tree);
  if (tree_.has_value()) return canonical == tree_message_;
  tree_ = std::move(tree);
  tree_message_ = std::move(canonical);
  level_counts_.clear();
  for (uint32_t l = 1; l <= tree_->num_levels(); ++l) {
    level_counts_.emplace_back(tree_->FrontierSize(l), 0);
  }
  return true;
}

void AheadServer::AppendStateBody(std::vector<uint8_t>& out) const {
  // [p1 varint][p2 varint][height varint]
  // [per complete level: NodesAtLevel(l) x count u64]
  // [tree u8][tree? length-prefixed kAheadTree bytes
  //           + per frontier level: FrontierSize(l) x count u64]
  AppendVarU64(out, phase1_reports_);
  AppendVarU64(out, phase2_reports_);
  AppendVarU64(out, shape_.height());
  for (const std::vector<uint64_t>& level : phase1_counts_) {
    for (uint64_t c : level) AppendU64(out, c);
  }
  AppendU8(out, tree_.has_value() ? 1 : 0);
  if (tree_.has_value()) {
    AppendLengthPrefixedBytes(out, tree_message_);
    for (const std::vector<uint64_t>& level : level_counts_) {
      for (uint64_t c : level) AppendU64(out, c);
    }
  }
}

bool AheadServer::RestoreStateBody(std::span<const uint8_t> body) {
  WireReader reader(body);
  uint64_t p1 = 0;
  uint64_t p2 = 0;
  uint64_t height = 0;
  if (!reader.ReadVarU64(&p1) || !reader.ReadVarU64(&p2) ||
      !reader.ReadVarU64(&height)) {
    return false;
  }
  // Cross-check against this server's own shape, never an allocation size.
  if (height != shape_.height()) return false;
  for (std::vector<uint64_t>& level : phase1_counts_) {
    for (uint64_t& c : level) {
      uint64_t v = 0;
      if (!reader.ReadU64(&v)) return false;
      c = v;
    }
  }
  uint8_t has_tree = 0;
  if (!reader.ReadU8(&has_tree)) return false;
  if (has_tree > 1) return false;
  // A tree-less server cannot have absorbed phase-2 reports.
  if (has_tree == 0 && p2 != 0) return false;
  if (has_tree == 1) {
    std::span<const uint8_t> tree_bytes;
    if (!reader.ReadLengthPrefixedBytes(&tree_bytes)) return false;
    uint64_t domain = 0;
    uint64_t fanout = 0;
    std::optional<AdaptiveTree> tree;
    if (ParseAheadTree(tree_bytes, &domain, &fanout, &tree) !=
        ParseError::kOk) {
      return false;
    }
    if (domain != shape_.domain() || fanout != shape_.fanout()) return false;
    // Canonical-form check: the embedded bytes must equal the tree's BFS
    // re-serialization, so restored state re-serializes identically and
    // merges compare trees by bytes.
    std::vector<uint8_t> canonical = SerializeAheadTree(domain, fanout, *tree);
    if (canonical.size() != tree_bytes.size() ||
        !std::equal(canonical.begin(), canonical.end(), tree_bytes.begin())) {
      return false;
    }
    tree_ = std::move(tree);
    tree_message_ = std::move(canonical);
    // Frontier sizes come from the parsed tree, whose node count
    // ParseAheadTree capped (kMaxAheadTreeNodes).
    level_counts_.clear();
    for (uint32_t l = 1; l <= tree_->num_levels(); ++l) {
      level_counts_.emplace_back(tree_->FrontierSize(l), 0);
    }
    for (std::vector<uint64_t>& level : level_counts_) {
      for (uint64_t& c : level) {
        uint64_t v = 0;
        if (!reader.ReadU64(&v)) return false;
        c = v;
      }
    }
  }
  phase1_reports_ = p1;
  phase2_reports_ = p2;
  return reader.AtEnd();
}

std::unique_ptr<service::AggregatorServer> AheadServer::DoCloneEmpty() const {
  return std::make_unique<AheadServer>(shape_.domain(), shape_.fanout(), eps_,
                                       config_);
}

service::MergeStatus AheadServer::DoMergeFrom(
    service::AggregatorServer& other) {
  auto& o = static_cast<AheadServer&>(other);
  // Post-processing knobs are not aggregate state, but merged shards must
  // agree on how the combined aggregate will be finalized.
  if (o.config_.threshold_scale != config_.threshold_scale ||
      o.max_depth_ != max_depth_ ||
      o.config_.consistency != config_.consistency ||
      o.config_.nonnegativity != config_.nonnegativity) {
    return service::MergeStatus::kConfigMismatch;
  }
  if (tree_.has_value() && o.tree_.has_value()) {
    // Phase-2 reports are encoded against one specific decomposition;
    // counts over two different trees can never be summed.
    if (tree_message_ != o.tree_message_) {
      return service::MergeStatus::kStateMismatch;
    }
    for (size_t l = 0; l < level_counts_.size(); ++l) {
      for (size_t j = 0; j < level_counts_[l].size(); ++j) {
        level_counts_[l][j] += o.level_counts_[l][j];
      }
    }
  } else if (o.tree_.has_value()) {
    // This side never closed phase 1: adopt the shard's tree and frontier
    // counts wholesale (consumes the source, per the merge contract).
    tree_ = std::move(o.tree_);
    tree_message_ = std::move(o.tree_message_);
    level_counts_ = std::move(o.level_counts_);
  }
  for (size_t l = 0; l < phase1_counts_.size(); ++l) {
    for (size_t j = 0; j < phase1_counts_[l].size(); ++j) {
      phase1_counts_[l][j] += o.phase1_counts_[l][j];
    }
  }
  phase1_reports_ += o.phase1_reports_;
  phase2_reports_ += o.phase2_reports_;
  return service::MergeStatus::kOk;
}

void AheadServer::DoFinalize() {
  if (!tree_.has_value()) BuildTree();
  const uint32_t num_levels = tree_->num_levels();
  std::vector<std::vector<double>> level_estimates(num_levels);
  std::vector<double> level_vars(num_levels, kInf);
  for (uint32_t l = 0; l < num_levels; ++l) {
    uint64_t n_l = 0;
    for (uint64_t c : level_counts_[l]) n_l += c;
    level_estimates[l] = GrrDebias(level_counts_[l], n_l, eps_);
    level_vars[l] =
        GrrLowFrequencyVariance(level_counts_[l].size(), eps_, n_l);
  }
  CombineFrontierEstimates(*tree_, level_estimates, level_vars,
                           &node_values_, &node_variances_);
  std::vector<int64_t> parents = tree_->ParentIndices();
  if (config_.consistency) {
    EnforceAdaptiveConsistency(parents, node_values_, node_variances_,
                               /*root_pin=*/1.0);
  }
  if (config_.nonnegativity) {
    NonNegativeRescaleTopDown(parents, node_values_);
  }
}

double AheadServer::RangeQuery(uint64_t a, uint64_t b) const {
  return RangeQueryWithUncertainty(a, b).value;
}

RangeEstimate AheadServer::RangeQueryWithUncertainty(uint64_t a,
                                                     uint64_t b) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, shape_.domain());
  return AdaptiveRangeEstimate(*tree_, node_values_, node_variances_, a, b);
}

std::vector<double> AheadServer::EstimateFrequencies() const {
  LDP_CHECK_MSG(finalized_, "EstimateFrequencies before Finalize");
  return AdaptiveLeafFrequencies(*tree_, node_values_, shape_.domain());
}

}  // namespace ldp::protocol
