// Deployable client/server split of the paper's HaarHRR mechanism.
//
// HaarHrrMechanism simulates both protocol sides in one object — ideal for
// experiments. This module is the shape a production rollout needs:
//
//   * HaarHrrClient lives on the user's device, holds only public
//     parameters, and turns the private value into one serialized report
//     (level id + Hadamard coefficient index + 1 randomized sign bit,
//     framed under the versioned v2 envelope — 18 bytes on the wire, or
//     the legacy unframed 11-byte v1 format after a downgrade). The
//     report is eps-LDP before it leaves the device.
//   * HaarHrrServer ingests serialized reports — rejecting malformed or
//     out-of-range ones instead of crashing — and answers range / prefix /
//     quantile queries after Finalize().
//
// The in-process mechanism and this split produce identically distributed
// estimates (tests/protocol_test.cc checks exact agreement under a shared
// RNG stream).

#ifndef LDPRANGE_PROTOCOL_HAAR_PROTOCOL_H_
#define LDPRANGE_PROTOCOL_HAAR_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/random.h"
#include "core/haar.h"
#include "frequency/hrr.h"
#include "protocol/envelope.h"

namespace ldp::protocol {

/// An unserialized HaarHRR report: which Haar level the user sampled and
/// their HRR report for that level's coefficient vector.
struct HaarHrrReport {
  uint32_t level = 1;  // 1 = finest detail level
  HrrReport inner;
};

/// Serializes one report. v2 (default): envelope + payload [level u8]
/// [index u64][sign u8], 18 bytes. v1: legacy [tag 0x02][level][index]
/// [sign], 11 bytes.
std::vector<uint8_t> SerializeHaarHrrReport(
    const HaarHrrReport& report, uint8_t wire_version = kWireVersionV2);

/// Parses and validates either wire version with an explicit error code
/// (range checks against the tree shape happen server side).
ParseError ParseHaarHrrReportDetailed(std::span<const uint8_t> bytes,
                                      HaarHrrReport* report);

/// Convenience wrapper: true iff ParseHaarHrrReportDetailed returns kOk.
bool ParseHaarHrrReport(std::span<const uint8_t> bytes,
                        HaarHrrReport* report);

/// One framed v2 batch message (kHaarHrrBatch):
/// payload = [count varint][count x ([level u8][index u64][sign u8])].
std::vector<uint8_t> SerializeHaarHrrReportBatch(
    std::span<const HaarHrrReport> reports);

/// Parses a v2 batch message; per-item validation failures are skipped
/// and counted in `malformed` (may be null), structural failures reject
/// the whole message.
ParseError ParseHaarHrrReportBatch(std::span<const uint8_t> bytes,
                                   std::vector<HaarHrrReport>* reports,
                                   uint64_t* malformed = nullptr);

/// Client-side encoder (stateless between users).
class HaarHrrClient {
 public:
  HaarHrrClient(uint64_t domain, double eps);

  uint64_t domain() const { return domain_; }
  uint64_t padded_domain() const { return padded_; }
  uint32_t height() const { return height_; }

  /// Wire version EncodeSerialized emits (default kWireVersionV2).
  uint8_t wire_version() const { return wire_version_; }
  void set_wire_version(uint8_t version);

  /// Downgrade hook: picks the highest version this client speaks that
  /// the server accepts; false (version unchanged) when none exists.
  bool NegotiateWireVersion(std::span<const uint8_t> server_accepted);

  /// Randomizes `value` in [0, domain) into a report. eps-LDP.
  HaarHrrReport Encode(uint64_t value, Rng& rng) const;

  /// Encode + serialize in one step.
  std::vector<uint8_t> EncodeSerialized(uint64_t value, Rng& rng) const;

  /// Batched encode (a simulation driver standing in for many devices):
  /// one report per value, drawn exactly as the Encode loop would.
  std::vector<HaarHrrReport> EncodeUsers(std::span<const uint64_t> values,
                                         Rng& rng) const;

  /// Batched encode + one framed v2 batch message (v2-only).
  std::vector<uint8_t> EncodeUsersSerialized(std::span<const uint64_t> values,
                                             Rng& rng) const;

 private:
  uint64_t domain_;
  uint64_t padded_;
  uint32_t height_;
  double eps_;
  uint8_t wire_version_ = kWireVersionV2;
};

/// Server-side aggregator.
class HaarHrrServer {
 public:
  HaarHrrServer(uint64_t domain, double eps);

  HaarHrrServer(const HaarHrrServer&) = delete;
  HaarHrrServer& operator=(const HaarHrrServer&) = delete;

  uint64_t domain() const { return domain_; }

  /// Wire versions this server's Absorb path accepts.
  static std::span<const uint8_t> AcceptedWireVersions() {
    return ServerAcceptedVersions();
  }

  /// Ingests one parsed report. Returns false (and counts a rejection)
  /// when the level or coefficient index is out of range.
  bool Absorb(const HaarHrrReport& report);

  /// Parses + ingests one serialized report; false on any parse or range
  /// failure. Never aborts on malformed bytes.
  bool AbsorbSerialized(std::span<const uint8_t> bytes);

  /// Batched ingestion; returns the number of accepted reports (rejects
  /// are counted per report, exactly as the Absorb loop would).
  uint64_t AbsorbBatch(std::span<const HaarHrrReport> reports);

  /// Parses + ingests one framed v2 batch message (see
  /// FlatHrrServer::AbsorbBatchSerialized for the accounting contract).
  ParseError AbsorbBatchSerialized(std::span<const uint8_t> bytes,
                                   uint64_t* accepted = nullptr);

  uint64_t accepted_reports() const { return accepted_; }
  uint64_t rejected_reports() const { return rejected_; }

  /// Debiases the aggregate into Haar coefficients. Call once.
  void Finalize();

  /// Estimated fraction of users in [a, b] (inclusive; b < domain).
  double RangeQuery(uint64_t a, uint64_t b) const;

  /// Estimated per-item frequencies (length = domain).
  std::vector<double> EstimateFrequencies() const;

  /// Smallest item whose estimated prefix mass reaches phi.
  uint64_t QuantileQuery(double phi) const;

 private:
  uint64_t domain_;
  uint64_t padded_;
  uint32_t height_;
  std::vector<std::unique_ptr<HrrOracle>> level_oracles_;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
  bool finalized_ = false;
  HaarCoefficients coefficients_;
};

}  // namespace ldp::protocol

#endif  // LDPRANGE_PROTOCOL_HAAR_PROTOCOL_H_
