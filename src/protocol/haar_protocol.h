// Deployable client/server split of the paper's HaarHRR mechanism.
//
// HaarHrrMechanism simulates both protocol sides in one object — ideal for
// experiments. This module is the shape a production rollout needs:
//
//   * HaarHrrClient lives on the user's device, holds only public
//     parameters, and turns the private value into one serialized report
//     (level id + Hadamard coefficient index + 1 randomized sign bit,
//     framed under the versioned v2 envelope — 18 bytes on the wire, or
//     the legacy unframed 11-byte v1 format after a downgrade). The
//     report is eps-LDP before it leaves the device.
//   * HaarHrrServer ingests serialized reports — rejecting malformed or
//     out-of-range ones instead of crashing — and answers range / prefix /
//     quantile queries after Finalize().
//
// The in-process mechanism and this split produce identically distributed
// estimates (tests/protocol_test.cc checks exact agreement under a shared
// RNG stream).

#ifndef LDPRANGE_PROTOCOL_HAAR_PROTOCOL_H_
#define LDPRANGE_PROTOCOL_HAAR_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/random.h"
#include "core/haar.h"
#include "frequency/hrr.h"
#include "protocol/envelope.h"
#include "service/aggregator_server.h"

namespace ldp::protocol {

/// An unserialized HaarHRR report: which Haar level the user sampled and
/// their HRR report for that level's coefficient vector.
struct HaarHrrReport {
  uint32_t level = 1;  // 1 = finest detail level
  HrrReport inner;
};

/// Serializes one report. v2 (default): envelope + payload [level u8]
/// [index u64][sign u8], 18 bytes. v1: legacy [tag 0x02][level][index]
/// [sign], 11 bytes.
std::vector<uint8_t> SerializeHaarHrrReport(
    const HaarHrrReport& report, uint8_t wire_version = kWireVersionV2);

/// Parses and validates either wire version with an explicit error code
/// (range checks against the tree shape happen server side).
ParseError ParseHaarHrrReportDetailed(std::span<const uint8_t> bytes,
                                      HaarHrrReport* report);

/// Convenience wrapper: true iff ParseHaarHrrReportDetailed returns kOk.
bool ParseHaarHrrReport(std::span<const uint8_t> bytes,
                        HaarHrrReport* report);

/// One framed v2 batch message (kHaarHrrBatch):
/// payload = [count varint][count x ([level u8][index u64][sign u8])].
std::vector<uint8_t> SerializeHaarHrrReportBatch(
    std::span<const HaarHrrReport> reports);

/// Parses a v2 batch message; per-item validation failures are skipped
/// and counted in `malformed` (may be null), structural failures reject
/// the whole message.
ParseError ParseHaarHrrReportBatch(std::span<const uint8_t> bytes,
                                   std::vector<HaarHrrReport>* reports,
                                   uint64_t* malformed = nullptr);

/// Client-side encoder (stateless between users). Wire-version selection
/// and downgrade negotiation come from DowngradableClient.
class HaarHrrClient : public DowngradableClient {
 public:
  HaarHrrClient(uint64_t domain, double eps);

  uint64_t domain() const { return domain_; }
  uint64_t padded_domain() const { return padded_; }
  uint32_t height() const { return height_; }

  /// Randomizes `value` in [0, domain) into a report. eps-LDP.
  HaarHrrReport Encode(uint64_t value, Rng& rng) const;

  /// Encode + serialize in one step.
  std::vector<uint8_t> EncodeSerialized(uint64_t value, Rng& rng) const;

  /// Batched encode (a simulation driver standing in for many devices):
  /// one report per value, drawn exactly as the Encode loop would.
  std::vector<HaarHrrReport> EncodeUsers(std::span<const uint64_t> values,
                                         Rng& rng) const;

  /// Batched encode + one framed v2 batch message (v2-only).
  std::vector<uint8_t> EncodeUsersSerialized(std::span<const uint64_t> values,
                                             Rng& rng) const;

 private:
  uint64_t domain_;
  uint64_t padded_;
  uint32_t height_;
  double eps_;
};

/// Server-side aggregator. Ingestion accounting, finalize discipline, and
/// quantile search come from service::AggregatorServer.
class HaarHrrServer final : public service::AggregatorServer {
 public:
  HaarHrrServer(uint64_t domain, double eps);

  std::string Name() const override { return "HaarHrr"; }
  uint64_t domain() const override { return domain_; }

  /// Ingests one parsed report. Returns false (and counts a rejection)
  /// when the level or coefficient index is out of range.
  bool Absorb(const HaarHrrReport& report);

  bool AbsorbSerialized(std::span<const uint8_t> bytes) override;

  /// Batched ingestion; returns the number of accepted reports (rejects
  /// are counted per report, exactly as the Absorb loop would).
  uint64_t AbsorbBatch(std::span<const HaarHrrReport> reports);

  ParseError DoAbsorbBatchSerialized(std::span<const uint8_t> bytes,
                                   uint64_t* accepted) override;

  /// Estimated fraction of users in [a, b] (inclusive; b < domain).
  double RangeQuery(uint64_t a, uint64_t b) const override;
  /// Uncertainty from Eq. 3: any range answers within the
  /// (1/2) log2(D)^2 V_F worst-case envelope.
  RangeEstimate RangeQueryWithUncertainty(uint64_t a,
                                          uint64_t b) const override;

  /// Estimated per-item frequencies (length = domain).
  std::vector<double> EstimateFrequencies() const override;

 private:
  /// Debiases the aggregate into Haar coefficients.
  void DoFinalize() override;
  service::StateKind state_kind() const override {
    return service::StateKind::kHaar;
  }
  double state_epsilon() const override { return eps_; }
  void AppendStateBody(std::vector<uint8_t>& out) const override;
  bool RestoreStateBody(std::span<const uint8_t> body) override;
  std::unique_ptr<service::AggregatorServer> DoCloneEmpty() const override;
  service::MergeStatus DoMergeFrom(service::AggregatorServer& other) override;

  uint64_t domain_;
  uint64_t padded_;
  uint32_t height_;
  double eps_;
  std::vector<std::unique_ptr<HrrOracle>> level_oracles_;
  HaarCoefficients coefficients_;
};

}  // namespace ldp::protocol

#endif  // LDPRANGE_PROTOCOL_HAAR_PROTOCOL_H_
