#include "core/hierarchical.h"

#include <cmath>

#include "common/bit_util.h"
#include "common/check.h"
#include "core/consistency.h"

namespace ldp {

HierarchicalMechanism::HierarchicalMechanism(uint64_t domain, double eps,
                                             const HierarchicalConfig& config)
    : RangeMechanism(domain, eps),
      config_(config),
      shape_(domain, config.fanout) {
  const uint32_t h = shape_.height();
  // Under splitting every level sees every user, each at eps/h (sequential
  // composition); under sampling each level's reporters spend full eps.
  double level_eps =
      config_.budget == BudgetStrategy::kSplitting
          ? eps / static_cast<double>(h)
          : eps;
  level_oracles_.reserve(h);
  for (uint32_t l = 1; l <= h; ++l) {
    level_oracles_.push_back(
        MakeOracle(config_.oracle, shape_.NodesAtLevel(l), level_eps));
  }
  if (config_.level_weights.empty()) {
    sampling_weights_.assign(h, 1.0);  // uniform (Lemma 4.4 optimum)
  } else {
    LDP_CHECK_EQ(config_.level_weights.size(), static_cast<size_t>(h));
    sampling_weights_ = config_.level_weights;
  }
}

std::string HierarchicalMechanism::Name() const {
  std::string name = "HH";
  if (config_.consistency) name += "c";
  name += std::to_string(config_.fanout);
  name += "-";
  name += OracleKindName(config_.oracle);
  if (config_.budget == BudgetStrategy::kSplitting) name += "-split";
  return name;
}

double HierarchicalMechanism::ReportBits() const {
  // A user reports their sampled level id plus one oracle report for that
  // level; average the oracle sizes over the level distribution.
  double total_w = 0.0;
  double bits = 0.0;
  for (size_t i = 0; i < sampling_weights_.size(); ++i) {
    total_w += sampling_weights_[i];
    bits += sampling_weights_[i] * level_oracles_[i]->ReportBits();
  }
  double level_id_bits =
      static_cast<double>(Log2Ceil(shape_.height()));
  return level_id_bits + bits / total_w;
}

void HierarchicalMechanism::EncodeUser(uint64_t value, Rng& rng) {
  LDP_CHECK_LT(value, domain_);
  LDP_CHECK_MSG(!finalized_, "EncodeUser after Finalize");
  if (config_.budget == BudgetStrategy::kSplitting) {
    for (uint32_t level = 1; level <= shape_.height(); ++level) {
      level_oracles_[level - 1]->SubmitValue(
          shape_.NodeContaining(level, value), rng);
    }
  } else {
    size_t pick = rng.Discrete(sampling_weights_);
    uint32_t level = static_cast<uint32_t>(pick) + 1;
    level_oracles_[pick]->SubmitValue(shape_.NodeContaining(level, value),
                                      rng);
  }
  ++users_;
}

void HierarchicalMechanism::EncodeUsers(std::span<const uint64_t> values,
                                        Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "EncodeUsers after Finalize");
  // Same draw order as the EncodeUser loop (level pick, then submit), with
  // the per-user finalized/range checks hoisted out of the hot loop.
  if (config_.budget == BudgetStrategy::kSplitting) {
    for (uint64_t value : values) {
      LDP_CHECK_LT(value, domain_);
      for (uint32_t level = 1; level <= shape_.height(); ++level) {
        level_oracles_[level - 1]->SubmitValue(
            shape_.NodeContaining(level, value), rng);
      }
    }
  } else {
    for (uint64_t value : values) {
      LDP_CHECK_LT(value, domain_);
      size_t pick = rng.Discrete(sampling_weights_);
      uint32_t level = static_cast<uint32_t>(pick) + 1;
      level_oracles_[pick]->SubmitValue(shape_.NodeContaining(level, value),
                                        rng);
    }
  }
  users_ += values.size();
}

std::unique_ptr<RangeMechanism> HierarchicalMechanism::CloneEmpty() const {
  return std::make_unique<HierarchicalMechanism>(domain_, eps_, config_);
}

void HierarchicalMechanism::MergeFrom(const RangeMechanism& other) {
  const auto* o = dynamic_cast<const HierarchicalMechanism*>(&other);
  LDP_CHECK_MSG(o != nullptr, "MergeFrom requires a HierarchicalMechanism");
  LDP_CHECK_MSG(!finalized_ && !o->finalized_,
                "cannot merge finalized mechanisms");
  // The domain check matters: same-fanout trees over different domains can
  // share their top levels (identical per-level oracle domains) and would
  // otherwise merge partially or read out of bounds.
  LDP_CHECK(o->domain_ == domain_);
  LDP_CHECK(o->config_.fanout == config_.fanout);
  LDP_CHECK(o->config_.budget == config_.budget);
  for (size_t l = 0; l < level_oracles_.size(); ++l) {
    level_oracles_[l]->MergeFrom(*o->level_oracles_[l]);
  }
  users_ += o->users_;
}

void HierarchicalMechanism::Finalize(Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "Finalize called twice");
  const uint32_t h = shape_.height();
  estimates_.assign(h + 1, {});
  estimates_[0] = {1.0};  // the root fraction is known exactly
  for (uint32_t l = 1; l <= h; ++l) {
    level_oracles_[l - 1]->Finalize(rng);
    estimates_[l] = level_oracles_[l - 1]->EstimateFractions();
  }
  if (config_.consistency) {
    EnforceHierarchicalConsistency(estimates_, shape_.fanout());
  }
  finalized_ = true;
}

double HierarchicalMechanism::NodeEstimate(const TreeNode& node) const {
  LDP_CHECK_MSG(finalized_, "NodeEstimate before Finalize");
  LDP_CHECK_LE(node.level, shape_.height());
  LDP_CHECK_LT(node.index, shape_.NodesAtLevel(node.level));
  return estimates_[node.level][node.index];
}

uint64_t HierarchicalMechanism::LevelReportCount(uint32_t level) const {
  LDP_CHECK_GE(level, 1u);
  LDP_CHECK_LE(level, shape_.height());
  return level_oracles_[level - 1]->report_count();
}

double HierarchicalMechanism::RangeQuery(uint64_t a, uint64_t b) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, domain_);
  double total = 0.0;
  for (const TreeNode& node : shape_.Decompose(a, b)) {
    total += estimates_[node.level][node.index];
  }
  return total;
}

RangeEstimate HierarchicalMechanism::RangeQueryWithUncertainty(
    uint64_t a, uint64_t b) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, domain_);
  // Sum the per-node estimator variances of the B-adic assembly
  // (Theorem 4.3's accounting); after constrained inference each node's
  // variance is bounded by the Lemma 4.6 factor B/(B+1).
  double ci_factor =
      config_.consistency
          ? static_cast<double>(config_.fanout) / (config_.fanout + 1.0)
          : 1.0;
  double variance = 0.0;
  double total = 0.0;
  for (const TreeNode& node : shape_.Decompose(a, b)) {
    total += estimates_[node.level][node.index];
    if (node.level > 0) {
      variance +=
          ci_factor * level_oracles_[node.level - 1]->EstimatorVariance();
    }
  }
  return RangeEstimate{total, std::sqrt(variance)};
}

std::vector<double> HierarchicalMechanism::EstimateFrequencies() const {
  LDP_CHECK_MSG(finalized_, "EstimateFrequencies before Finalize");
  const std::vector<double>& leaves = estimates_[shape_.height()];
  return std::vector<double>(leaves.begin(), leaves.begin() + domain_);
}

}  // namespace ldp
