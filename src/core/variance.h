// Closed-form variance bounds from the paper's analysis. Used by tests (to
// check empirical variances stay within the proven envelopes) and by the
// ablation bench (theory-vs-measured curves, optimal branching factor).

#ifndef LDPRANGE_CORE_VARIANCE_H_
#define LDPRANGE_CORE_VARIANCE_H_

#include <cstdint>

namespace ldp {

/// Fact 1: a flat method answers a length-r range with variance r * V_F.
double FlatRangeVarianceBound(uint64_t r, double eps, double n);

/// Lemma 4.2: average worst-case squared error over all C(D,2) range
/// queries for a flat method: (D + 2)/3 * V_F.
double FlatAverageVarianceBound(uint64_t domain, double eps, double n);

/// Theorem 4.3 with uniform level sampling (Eq. 1): the HH_B worst-case
/// variance for a length-r query, (2B-1) * h * (ceil(log_B r) + 1) * V_F.
double HhRangeVarianceBound(uint64_t domain, uint64_t fanout, uint64_t r,
                            double eps, double n);

/// Section 4.5 (Eq. 2 generalized): after constrained inference the bound
/// improves to (B+1) * log_B(r) * log_B(D) * V_F / 2.
double HhConsistentRangeVarianceBound(uint64_t domain, uint64_t fanout,
                                      uint64_t r, double eps, double n);

/// Eq. 3: HaarHRR's worst-case variance for any range,
/// (1/2) * log2(D)^2 * V_F.
double HaarRangeVarianceBound(uint64_t domain, double eps, double n);

/// Section 4.7: prefix queries touch only one fringe, halving the variance
/// bound of either structured method.
double PrefixVarianceFactor();

/// The paper's optimal branching factor: the root of
///   B ln B - 2B + 2 = 0  (~4.922)  without consistency (Section 4.4), or
///   B ln B - 2B - 2 = 0  (~9.18)   with consistency     (Section 4.5).
double OptimalBranchingFactor(bool with_consistency);

}  // namespace ldp

#endif  // LDPRANGE_CORE_VARIANCE_H_
