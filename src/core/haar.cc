#include "core/haar.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/bit_util.h"
#include "common/check.h"

namespace ldp {

HaarCoefficients HaarForward(const std::vector<double>& leaves) {
  LDP_CHECK(!leaves.empty());
  LDP_CHECK_MSG(IsPowerOfTwo(leaves.size()), "Haar needs a power-of-two size");
  HaarCoefficients out;
  out.height = Log2Floor(leaves.size());
  out.detail.resize(out.height);
  const double inv_sqrt2 = 1.0 / std::numbers::sqrt2;
  std::vector<double> sums = leaves;
  for (uint32_t l = 1; l <= out.height; ++l) {
    size_t half = sums.size() / 2;
    std::vector<double> next(half);
    out.detail[l - 1].resize(half);
    for (size_t k = 0; k < half; ++k) {
      out.detail[l - 1][k] = (sums[2 * k] - sums[2 * k + 1]) * inv_sqrt2;
      next[k] = (sums[2 * k] + sums[2 * k + 1]) * inv_sqrt2;
    }
    sums.swap(next);
  }
  out.average = sums[0];
  return out;
}

std::vector<double> HaarInverse(const HaarCoefficients& coefficients) {
  const double inv_sqrt2 = 1.0 / std::numbers::sqrt2;
  std::vector<double> values = {coefficients.average};
  for (uint32_t l = coefficients.height; l >= 1; --l) {
    const std::vector<double>& d = coefficients.detail[l - 1];
    LDP_CHECK_EQ(d.size(), values.size());
    std::vector<double> next(values.size() * 2);
    for (size_t k = 0; k < values.size(); ++k) {
      next[2 * k] = (values[k] + d[k]) * inv_sqrt2;
      next[2 * k + 1] = (values[k] - d[k]) * inv_sqrt2;
    }
    values.swap(next);
  }
  return values;
}

HaarUserCoefficient HaarUserView(uint64_t z, uint32_t level) {
  LDP_CHECK_GE(level, 1u);
  uint64_t block = z >> level;
  bool left_half = ((z >> (level - 1)) & 1u) == 0;
  return HaarUserCoefficient{block, left_half ? +1 : -1};
}

double HaarRangeEstimate(const HaarCoefficients& coefficients,
                         uint64_t padded_domain, uint64_t a, uint64_t b) {
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, padded_domain);
  double r = static_cast<double>(b - a + 1);
  double total = r * coefficients.average /
                 std::sqrt(static_cast<double>(padded_domain));
  // Only the blocks containing the range endpoints can carry nonzero
  // weight (fully covered or disjoint blocks cancel), so each level
  // contributes at most two coefficients.
  for (uint32_t l = 1; l <= coefficients.height; ++l) {
    uint64_t ka = a >> l;
    uint64_t kb = b >> l;
    total += HaarRangeWeight(l, ka, a, b) * coefficients.detail[l - 1][ka];
    if (kb != ka) {
      total +=
          HaarRangeWeight(l, kb, a, b) * coefficients.detail[l - 1][kb];
    }
  }
  return total;
}

double HaarRangeWeight(uint32_t level, uint64_t block, uint64_t a,
                       uint64_t b) {
  LDP_CHECK_GE(level, 1u);
  LDP_CHECK_LE(a, b);
  const uint64_t len = uint64_t{1} << level;
  const uint64_t lo = block * len;
  const uint64_t mid = lo + len / 2;  // first leaf of the right half
  const uint64_t hi = lo + len - 1;
  auto overlap = [&](uint64_t s, uint64_t e) -> uint64_t {
    uint64_t o_lo = std::max(a, s);
    uint64_t o_hi = std::min(b, e);
    return o_lo <= o_hi ? o_hi - o_lo + 1 : 0;
  };
  double o_left = static_cast<double>(overlap(lo, mid - 1));
  double o_right = static_cast<double>(overlap(mid, hi));
  return (o_left - o_right) *
         std::exp2(-0.5 * static_cast<double>(level));
}

}  // namespace ldp
