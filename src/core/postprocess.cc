#include "core/postprocess.h"

#include <algorithm>

#include "common/check.h"

namespace ldp {

void NormSubProjection(std::vector<double>& frequencies) {
  LDP_CHECK(!frequencies.empty());
  const size_t n = frequencies.size();
  // Iterate: clamp negatives, spread the deficit over the still-positive
  // support. Terminates because the positive support shrinks every round.
  for (size_t round = 0; round <= n; ++round) {
    double positive_sum = 0.0;
    size_t positive_count = 0;
    for (double& f : frequencies) {
      if (f < 0.0) f = 0.0;
      if (f > 0.0) {
        positive_sum += f;
        ++positive_count;
      }
    }
    if (positive_count == 0) {
      // Degenerate input: fall back to the uniform distribution.
      std::fill(frequencies.begin(), frequencies.end(),
                1.0 / static_cast<double>(n));
      return;
    }
    double delta = (1.0 - positive_sum) / static_cast<double>(positive_count);
    if (std::abs(delta) < 1e-15) break;
    bool went_negative = false;
    for (double& f : frequencies) {
      if (f > 0.0) {
        f += delta;
        went_negative |= f < 0.0;
      }
    }
    if (!went_negative) break;
  }
  // Final cleanup for floating-point stragglers.
  double total = 0.0;
  for (double& f : frequencies) {
    if (f < 0.0) f = 0.0;
    total += f;
  }
  if (total > 0.0) {
    for (double& f : frequencies) {
      f /= total;
    }
  }
}

std::vector<double> IsotonicRegression(const std::vector<double>& values) {
  LDP_CHECK(!values.empty());
  // Pool-adjacent-violators with a block stack: each block holds the mean
  // of a maximal pooled run.
  struct Block {
    double sum;
    size_t count;
    double mean() const { return sum / static_cast<double>(count); }
  };
  std::vector<Block> blocks;
  blocks.reserve(values.size());
  for (double v : values) {
    blocks.push_back({v, 1});
    while (blocks.size() >= 2 &&
           blocks[blocks.size() - 2].mean() >= blocks.back().mean()) {
      Block top = blocks.back();
      blocks.pop_back();
      blocks.back().sum += top.sum;
      blocks.back().count += top.count;
    }
  }
  std::vector<double> fitted;
  fitted.reserve(values.size());
  for (const Block& block : blocks) {
    fitted.insert(fitted.end(), block.count, block.mean());
  }
  return fitted;
}

std::vector<double> SmoothedCdf(const RangeMechanism& mechanism) {
  const uint64_t d = mechanism.domain_size();
  std::vector<double> prefixes(d);
  for (uint64_t b = 0; b < d; ++b) {
    prefixes[b] = mechanism.PrefixQuery(b);
  }
  std::vector<double> cdf = IsotonicRegression(prefixes);
  for (double& v : cdf) {
    v = std::clamp(v, 0.0, 1.0);
  }
  return cdf;
}

uint64_t QuantileFromCdf(const std::vector<double>& cdf, double phi) {
  LDP_CHECK(!cdf.empty());
  LDP_CHECK(phi >= 0.0 && phi <= 1.0);
  auto it = std::lower_bound(cdf.begin(), cdf.end(), phi);
  if (it == cdf.end()) {
    return cdf.size() - 1;
  }
  return static_cast<uint64_t>(it - cdf.begin());
}

}  // namespace ldp
