#include "core/range_mechanism.h"

#include <algorithm>
#include <mutex>

#include "common/check.h"
#include "common/hash.h"
#include "common/parallel.h"

namespace ldp {

RangeMechanism::RangeMechanism(uint64_t domain, double eps)
    : domain_(domain), eps_(eps) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
}

void RangeMechanism::EncodeUsers(std::span<const uint64_t> values, Rng& rng) {
  for (uint64_t value : values) {
    EncodeUser(value, rng);
  }
}

std::unique_ptr<RangeMechanism> RangeMechanism::CloneEmpty() const {
  return nullptr;
}

void RangeMechanism::MergeFrom(const RangeMechanism& /*other*/) {
  LDP_CHECK_MSG(false, "this mechanism does not support sharded ingestion");
}

uint64_t RangeMechanism::QuantileQuery(double phi) const {
  LDP_CHECK(phi >= 0.0 && phi <= 1.0);
  // Binary search for the smallest j with PrefixQuery(j) >= phi. Prefix
  // estimates are noisy and need not be monotone; the search still
  // terminates and lands within the noise envelope of the true quantile
  // (paper Section 4.7 evaluates exactly this procedure).
  uint64_t lo = 0;
  uint64_t hi = domain_ - 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (PrefixQuery(mid) >= phi) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

namespace {

// Logical chunk length of the sharded driver. Fixed (not derived from the
// thread count) so that the per-chunk Rng streams — and therefore the final
// aggregate — do not depend on how many workers happen to run.
constexpr uint64_t kEncodeChunk = uint64_t{1} << 14;

// Deterministic, well-mixed seed for chunk c of a run keyed by `seed`.
uint64_t ChunkSeed(uint64_t seed, uint64_t c) {
  return Mix64(seed + 0x9E3779B97F4A7C15ULL * (c + 1));
}

}  // namespace

void EncodeUsersSharded(RangeMechanism& mechanism,
                        std::span<const uint64_t> values, uint64_t seed,
                        unsigned threads) {
  const uint64_t n = values.size();
  if (n == 0) return;
  const uint64_t num_chunks = (n + kEncodeChunk - 1) / kEncodeChunk;
  if (threads == 0) threads = HardwareThreads();
  if (threads <= 1 || num_chunks == 1) {
    // Same chunked Rng streams, no forking: bit-identical to the
    // multi-threaded result.
    for (uint64_t c = 0; c < num_chunks; ++c) {
      uint64_t begin = c * kEncodeChunk;
      uint64_t end = std::min(n, begin + kEncodeChunk);
      Rng rng(ChunkSeed(seed, c));
      mechanism.EncodeUsers(values.subspan(begin, end - begin), rng);
    }
    return;
  }
  std::mutex mu;
  ParallelFor(num_chunks, threads,
              [&](unsigned /*worker*/, uint64_t first, uint64_t last) {
                std::unique_ptr<RangeMechanism> shard =
                    mechanism.CloneEmpty();
                LDP_CHECK_MSG(shard != nullptr,
                              "mechanism does not support sharded ingestion");
                for (uint64_t c = first; c < last; ++c) {
                  uint64_t begin = c * kEncodeChunk;
                  uint64_t end = std::min(n, begin + kEncodeChunk);
                  Rng rng(ChunkSeed(seed, c));
                  shard->EncodeUsers(values.subspan(begin, end - begin), rng);
                }
                std::lock_guard<std::mutex> lock(mu);
                mechanism.MergeFrom(*shard);
              });
}

}  // namespace ldp
