#include "core/range_mechanism.h"

#include "common/check.h"

namespace ldp {

RangeMechanism::RangeMechanism(uint64_t domain, double eps)
    : domain_(domain), eps_(eps) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
}

uint64_t RangeMechanism::QuantileQuery(double phi) const {
  LDP_CHECK(phi >= 0.0 && phi <= 1.0);
  // Binary search for the smallest j with PrefixQuery(j) >= phi. Prefix
  // estimates are noisy and need not be monotone; the search still
  // terminates and lands within the noise envelope of the true quantile
  // (paper Section 4.7 evaluates exactly this procedure).
  uint64_t lo = 0;
  uint64_t hi = domain_ - 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (PrefixQuery(mid) >= phi) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace ldp
