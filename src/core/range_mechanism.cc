#include "core/range_mechanism.h"

#include <algorithm>
#include <mutex>

#include "common/check.h"
#include "common/hash.h"
#include "common/parallel.h"

namespace ldp {

MechanismBase::MechanismBase(uint64_t domain, double eps)
    : domain_(domain), eps_(eps) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
}

void MechanismBase::EncodePoints(std::span<const uint64_t> coords, Rng& rng) {
  const size_t d = dimensions();
  LDP_CHECK_EQ(coords.size() % d, 0u);
  for (size_t i = 0; i < coords.size(); i += d) {
    EncodePoint(coords.data() + i, rng);
  }
}

std::unique_ptr<MechanismBase> MechanismBase::CloneEmptyBase() const {
  return nullptr;
}

void MechanismBase::MergeFromBase(const MechanismBase& /*other*/) {
  LDP_CHECK_MSG(false, "this mechanism does not support sharded ingestion");
}

RangeMechanism::RangeMechanism(uint64_t domain, double eps)
    : MechanismBase(domain, eps) {}

void RangeMechanism::EncodeUsers(std::span<const uint64_t> values, Rng& rng) {
  for (uint64_t value : values) {
    EncodeUser(value, rng);
  }
}

std::unique_ptr<RangeMechanism> RangeMechanism::CloneEmpty() const {
  return nullptr;
}

void RangeMechanism::MergeFrom(const RangeMechanism& /*other*/) {
  LDP_CHECK_MSG(false, "this mechanism does not support sharded ingestion");
}

void RangeMechanism::EncodePoint(const uint64_t* coords, Rng& rng) {
  EncodeUser(coords[0], rng);
}

void RangeMechanism::EncodePoints(std::span<const uint64_t> coords,
                                  Rng& rng) {
  EncodeUsers(coords, rng);
}

std::unique_ptr<MechanismBase> RangeMechanism::CloneEmptyBase() const {
  return CloneEmpty();
}

void RangeMechanism::MergeFromBase(const MechanismBase& other) {
  const auto* o = dynamic_cast<const RangeMechanism*>(&other);
  LDP_CHECK_MSG(o != nullptr, "MergeFromBase requires a RangeMechanism");
  MergeFrom(*o);
}

double RangeMechanism::BoxQuery(std::span<const AxisInterval> box) const {
  LDP_CHECK_EQ(box.size(), size_t{1});
  return RangeQuery(box[0].lo, box[0].hi);
}

RangeEstimate RangeMechanism::BoxQueryWithUncertainty(
    std::span<const AxisInterval> box) const {
  LDP_CHECK_EQ(box.size(), size_t{1});
  return RangeQueryWithUncertainty(box[0].lo, box[0].hi);
}

uint64_t RangeMechanism::QuantileQuery(double phi) const {
  LDP_CHECK(phi >= 0.0 && phi <= 1.0);
  // Binary search for the smallest j with PrefixQuery(j) >= phi. Prefix
  // estimates are noisy and need not be monotone; the search still
  // terminates and lands within the noise envelope of the true quantile
  // (paper Section 4.7 evaluates exactly this procedure).
  uint64_t lo = 0;
  uint64_t hi = domain_ - 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (PrefixQuery(mid) >= phi) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

namespace {

// Logical chunk length (in users) of the sharded driver. Fixed (not derived
// from the thread count) so that the per-chunk Rng streams — and therefore
// the final aggregate — do not depend on how many workers happen to run.
constexpr uint64_t kEncodeChunk = uint64_t{1} << 14;

// Deterministic, well-mixed seed for chunk c of a run keyed by `seed`.
uint64_t ChunkSeed(uint64_t seed, uint64_t c) {
  return Mix64(seed + 0x9E3779B97F4A7C15ULL * (c + 1));
}

}  // namespace

void EncodePointsSharded(MechanismBase& mechanism,
                         std::span<const uint64_t> coords, uint64_t seed,
                         unsigned threads) {
  const uint64_t d = mechanism.dimensions();
  LDP_CHECK_EQ(coords.size() % d, size_t{0});
  const uint64_t n = coords.size() / d;
  if (n == 0) return;
  const uint64_t num_chunks = (n + kEncodeChunk - 1) / kEncodeChunk;
  if (threads == 0) threads = HardwareThreads();
  if (threads <= 1 || num_chunks == 1) {
    // Same chunked Rng streams, no forking: bit-identical to the
    // multi-threaded result.
    for (uint64_t c = 0; c < num_chunks; ++c) {
      uint64_t begin = c * kEncodeChunk;
      uint64_t end = std::min(n, begin + kEncodeChunk);
      Rng rng(ChunkSeed(seed, c));
      mechanism.EncodePoints(coords.subspan(begin * d, (end - begin) * d),
                             rng);
    }
    return;
  }
  std::mutex mu;
  ParallelFor(num_chunks, threads,
              [&](unsigned /*worker*/, uint64_t first, uint64_t last) {
                std::unique_ptr<MechanismBase> shard =
                    mechanism.CloneEmptyBase();
                LDP_CHECK_MSG(shard != nullptr,
                              "mechanism does not support sharded ingestion");
                for (uint64_t c = first; c < last; ++c) {
                  uint64_t begin = c * kEncodeChunk;
                  uint64_t end = std::min(n, begin + kEncodeChunk);
                  Rng rng(ChunkSeed(seed, c));
                  shard->EncodePoints(
                      coords.subspan(begin * d, (end - begin) * d), rng);
                }
                std::lock_guard<std::mutex> lock(mu);
                mechanism.MergeFromBase(*shard);
              });
}

void EncodeUsersSharded(RangeMechanism& mechanism,
                        std::span<const uint64_t> values, uint64_t seed,
                        unsigned threads) {
  EncodePointsSharded(mechanism, values, seed, threads);
}

}  // namespace ldp
