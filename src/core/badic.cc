#include "core/badic.h"

#include "common/bit_util.h"

namespace ldp {

TreeShape::TreeShape(uint64_t domain, uint64_t fanout)
    : domain_(domain), fanout_(fanout) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_GE(fanout, 2u);
  height_ = TreeHeight(domain, fanout);
  padded_ = IntPow(fanout, height_);
}

uint64_t TreeShape::NodesAtLevel(uint32_t level) const {
  LDP_CHECK_LE(level, height_);
  return IntPow(fanout_, level);
}

uint64_t TreeShape::BlockLength(uint32_t level) const {
  LDP_CHECK_LE(level, height_);
  return IntPow(fanout_, height_ - level);
}

uint64_t TreeShape::BlockStart(const TreeNode& node) const {
  return node.index * BlockLength(node.level);
}

uint64_t TreeShape::BlockEnd(const TreeNode& node) const {
  return BlockStart(node) + BlockLength(node.level) - 1;
}

uint64_t TreeShape::NodeContaining(uint32_t level, uint64_t z) const {
  LDP_CHECK_LT(z, padded_);
  return z / BlockLength(level);
}

uint64_t TreeShape::TotalNodes() const {
  uint64_t total = 0;
  for (uint32_t l = 0; l <= height_; ++l) {
    total += NodesAtLevel(l);
  }
  return total;
}

std::vector<TreeNode> TreeShape::Decompose(uint64_t a, uint64_t b) const {
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, padded_);
  std::vector<TreeNode> out;
  DecomposeRec(0, 0, 0, padded_ - 1, a, b, out);
  return out;
}

void TreeShape::DecomposeRec(uint32_t level, uint64_t index, uint64_t lo,
                             uint64_t hi, uint64_t a, uint64_t b,
                             std::vector<TreeNode>& out) const {
  if (a <= lo && hi <= b) {
    out.push_back(TreeNode{level, index});
    return;
  }
  if (hi < a || lo > b) {
    return;
  }
  LDP_DCHECK(level < height_);
  uint64_t child_span = (hi - lo + 1) / fanout_;
  for (uint64_t c = 0; c < fanout_; ++c) {
    uint64_t clo = lo + c * child_span;
    uint64_t chi = clo + child_span - 1;
    if (chi < a) continue;
    if (clo > b) break;  // children are ordered; nothing further overlaps
    DecomposeRec(level + 1, index * fanout_ + c, clo, chi, a, b, out);
  }
}

}  // namespace ldp
