// Common interface for LDP range-query mechanisms (paper Sections 4, 6).
//
// Protocol shape shared by every mechanism:
//   1. each user calls EncodePoint() / EncodeUser() once with their private
//      value — the only step that sees private data, and the only one that
//      consumes privacy budget (each mechanism is eps-LDP end to end);
//   2. the aggregator calls Finalize() once, which debiases the collected
//      noisy reports into an internal estimate structure;
//   3. any number of BoxQuery / RangeQuery / PrefixQuery / PointQuery /
//      QuantileQuery calls read the estimates (pure post-processing, free
//      under DP).
//
// The abstraction is dimension-aware: a user's point is a span of d
// coordinates and a query is an axis-aligned box of d inclusive intervals
// (paper Section 6 extends the 1-D decomposition to d dimensions). The 1-D
// mechanisms keep their classic value/interval API via RangeMechanism,
// which adapts it onto the point/box interface.

#ifndef LDPRANGE_CORE_RANGE_MECHANISM_H_
#define LDPRANGE_CORE_RANGE_MECHANISM_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"

namespace ldp {

/// A range answer with its predicted sampling uncertainty: the true value
/// lies within value +/- k*stddev with the usual Gaussian coverage (the
/// estimate is a sum of many independent user contributions).
struct RangeEstimate {
  double value = 0.0;
  double stddev = 0.0;
};

/// One inclusive per-axis interval of an axis-aligned box query.
struct AxisInterval {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const AxisInterval&, const AxisInterval&) = default;
};

/// Abstract dimension-aware LDP range-query mechanism: points are spans of
/// dimensions() coordinates, queries are axis-aligned boxes.
class MechanismBase {
 public:
  virtual ~MechanismBase() = default;

  MechanismBase(const MechanismBase&) = delete;
  MechanismBase& operator=(const MechanismBase&) = delete;

  /// Per-axis domain size D; every coordinate lives in [0, D).
  uint64_t domain_size() const { return domain_; }

  /// Privacy parameter of the whole protocol.
  double epsilon() const { return eps_; }

  /// Number of axes d. Points carry d coordinates, boxes d intervals.
  virtual uint32_t dimensions() const = 0;

  /// Number of users encoded so far.
  virtual uint64_t user_count() const = 0;

  /// Short identifier used in benchmark tables, e.g. "HHc8-OUE", "HaarHRR".
  virtual std::string Name() const = 0;

  /// Average per-user report size in bits.
  virtual double ReportBits() const = 0;

  /// Client side: randomize the point `coords` (dimensions() values, each
  /// in [0, D)) and fold the report into the aggregator state.
  virtual void EncodePoint(const uint64_t* coords, Rng& rng) = 0;

  /// Batched client side: `coords` is a row-major n x dimensions() block of
  /// coordinates, encoded in order and drawing from `rng` exactly as the
  /// equivalent EncodePoint loop would (bit-identical for the same Rng
  /// stream). For multi-threaded ingestion see EncodePointsSharded().
  virtual void EncodePoints(std::span<const uint64_t> coords, Rng& rng);

  /// Fresh mechanism with identical parameters and empty aggregate state
  /// (per-thread sharding). Returns nullptr when the mechanism does not
  /// support sharded ingestion.
  virtual std::unique_ptr<MechanismBase> CloneEmptyBase() const;

  /// Adds another shard's pre-Finalize aggregate state into this one. The
  /// other mechanism must come from CloneEmptyBase() on a compatible
  /// instance.
  virtual void MergeFromBase(const MechanismBase& other);

  /// Server side: debias aggregates and build the query structure. Must be
  /// called exactly once, after all users and before any query.
  virtual void Finalize(Rng& rng) = 0;

  /// Estimated fraction of users inside the axis-aligned box (box.size()
  /// == dimensions(), inclusive per-axis bounds). Estimates are unbiased
  /// but may fall outside [0, 1].
  virtual double BoxQuery(std::span<const AxisInterval> box) const = 0;

  /// BoxQuery plus the analytically-derived standard deviation of the
  /// estimate (from each mechanism's exact variance accounting).
  virtual RangeEstimate BoxQueryWithUncertainty(
      std::span<const AxisInterval> box) const = 0;

 protected:
  MechanismBase(uint64_t domain, double eps);

  uint64_t domain_;
  double eps_;
};

/// Abstract 1-D LDP range-query mechanism: the classic value/interval API,
/// adapted onto the point/box interface (a value is a 1-coordinate point,
/// an interval a 1-axis box).
class RangeMechanism : public MechanismBase {
 public:
  /// Client side: randomize `value` (in [0, D)) and fold the report into
  /// the aggregator state.
  virtual void EncodeUser(uint64_t value, Rng& rng) = 0;

  /// Batched client side: encodes `values` in order, drawing from `rng`
  /// exactly as the equivalent EncodeUser loop would (bit-identical for
  /// the same Rng stream). Mechanism overrides route the batch through the
  /// oracles' SubmitBatch fast paths. For multi-threaded ingestion see
  /// EncodeUsersSharded().
  virtual void EncodeUsers(std::span<const uint64_t> values, Rng& rng);

  /// Fresh mechanism with identical parameters and empty aggregate state
  /// (per-thread sharding). Returns nullptr when the mechanism does not
  /// support sharded ingestion; the paper's three mechanism families all
  /// do.
  virtual std::unique_ptr<RangeMechanism> CloneEmpty() const;

  /// Adds another shard's pre-Finalize aggregate state into this one. The
  /// other mechanism must come from CloneEmpty() on a compatible instance.
  virtual void MergeFrom(const RangeMechanism& other);

  /// Estimated fraction of users with value in the inclusive range [a, b].
  /// Estimates are unbiased but may fall outside [0, 1].
  virtual double RangeQuery(uint64_t a, uint64_t b) const = 0;

  /// RangeQuery plus the analytically-derived standard deviation of the
  /// estimate (from each mechanism's exact variance accounting; for
  /// consistency-processed hierarchies the Lemma 4.6 B/(B+1) factor is
  /// applied per node, making the reported stddev a slight over-estimate).
  virtual RangeEstimate RangeQueryWithUncertainty(uint64_t a,
                                                  uint64_t b) const = 0;

  /// Estimated fraction of users with value <= b.
  double PrefixQuery(uint64_t b) const { return RangeQuery(0, b); }

  /// Estimated fraction of users with value exactly z.
  double PointQuery(uint64_t z) const { return RangeQuery(z, z); }

  /// Estimated per-item frequency vector (length D).
  virtual std::vector<double> EstimateFrequencies() const = 0;

  /// The phi-quantile: smallest item whose estimated prefix mass reaches
  /// phi, found by binary search over prefix queries (paper Section 4.7).
  uint64_t QuantileQuery(double phi) const;

  // Point/box adapters: a 1-D mechanism is a MechanismBase with d = 1.
  uint32_t dimensions() const final { return 1; }
  void EncodePoint(const uint64_t* coords, Rng& rng) final;
  void EncodePoints(std::span<const uint64_t> coords, Rng& rng) final;
  std::unique_ptr<MechanismBase> CloneEmptyBase() const final;
  void MergeFromBase(const MechanismBase& other) final;
  double BoxQuery(std::span<const AxisInterval> box) const final;
  RangeEstimate BoxQueryWithUncertainty(
      std::span<const AxisInterval> box) const final;

 protected:
  RangeMechanism(uint64_t domain, double eps);
};

/// Multi-threaded batched ingestion: encodes the row-major n x dimensions()
/// coordinate block `coords` into `mechanism` using up to `threads` workers
/// (0 = one per hardware core), each working on a CloneEmptyBase() fork
/// that is merged back when its share is done.
///
/// Determinism contract: the user stream is split into fixed-size logical
/// chunks (on user boundaries), and chunk c always draws from its own Rng
/// forked deterministically from (`seed`, c) — independent of how chunks
/// land on threads. All mechanism aggregates are integer counters, so the
/// final state is bit-identical for every thread count, including
/// threads == 1. (The stream differs from the single-Rng EncodePoints()
/// path, whose draws are sequential; estimates agree statistically, not
/// bitwise.)
void EncodePointsSharded(MechanismBase& mechanism,
                         std::span<const uint64_t> coords, uint64_t seed,
                         unsigned threads = 0);

/// 1-D alias of EncodePointsSharded (values are 1-coordinate points); kept
/// for the classic name. Bit-identical to the historical 1-D driver.
void EncodeUsersSharded(RangeMechanism& mechanism,
                        std::span<const uint64_t> values, uint64_t seed,
                        unsigned threads = 0);

}  // namespace ldp

#endif  // LDPRANGE_CORE_RANGE_MECHANISM_H_
