#include "core/method.h"

#include "common/check.h"
#include "core/flat.h"
#include "core/haar_hrr.h"
#include "core/hierarchical.h"

namespace ldp {

MethodSpec MethodSpec::Flat(OracleKind oracle) {
  MethodSpec spec;
  spec.family = MethodFamily::kFlat;
  spec.oracle = oracle;
  return spec;
}

MethodSpec MethodSpec::Hh(uint64_t fanout, OracleKind oracle,
                          bool consistency) {
  MethodSpec spec;
  spec.family = MethodFamily::kHierarchical;
  spec.fanout = fanout;
  spec.oracle = oracle;
  spec.consistency = consistency;
  return spec;
}

MethodSpec MethodSpec::Haar() {
  MethodSpec spec;
  spec.family = MethodFamily::kHaar;
  return spec;
}

MethodSpec MethodSpec::Ahead(uint64_t fanout, OracleKind oracle) {
  AheadConfig config;
  config.fanout = fanout;
  config.oracle = oracle;
  return AheadWith(config);
}

MethodSpec MethodSpec::AheadWith(const AheadConfig& config) {
  MethodSpec spec;
  spec.family = MethodFamily::kAhead;
  spec.fanout = config.fanout;
  spec.oracle = config.oracle;
  spec.consistency = config.consistency;
  spec.ahead = config;
  return spec;
}

std::string MethodSpec::Name() const {
  switch (family) {
    case MethodFamily::kFlat: {
      std::string name = "Flat-";
      name += OracleKindName(oracle);
      return name;
    }
    case MethodFamily::kHierarchical: {
      std::string name = consistency ? "HHc" : "HH";
      name += std::to_string(fanout);
      if (oracle != OracleKind::kOueSimulated) {
        name += "-";
        name += OracleKindName(oracle);
      }
      return name;
    }
    case MethodFamily::kHaar:
      return "HaarHRR";
    case MethodFamily::kAhead:
      return AheadMethodName(ahead);
  }
  return "unknown";
}

std::unique_ptr<RangeMechanism> MakeMechanism(const MethodSpec& spec,
                                              uint64_t domain, double eps) {
  switch (spec.family) {
    case MethodFamily::kFlat:
      return std::make_unique<FlatMechanism>(domain, eps, spec.oracle);
    case MethodFamily::kHierarchical: {
      HierarchicalConfig config;
      config.fanout = spec.fanout;
      config.oracle = spec.oracle;
      config.consistency = spec.consistency;
      return std::make_unique<HierarchicalMechanism>(domain, eps, config);
    }
    case MethodFamily::kHaar:
      return std::make_unique<HaarHrrMechanism>(domain, eps);
    case MethodFamily::kAhead:
      return std::make_unique<AheadMechanism>(domain, eps, spec.ahead);
  }
  LDP_CHECK_MSG(false, "unknown method family");
  return nullptr;
}

}  // namespace ldp
