#include "core/method.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "core/flat.h"
#include "core/haar_hrr.h"
#include "core/hierarchical.h"
#include "core/multidim.h"

namespace ldp {

namespace {

// Axis-0 marginal view of a d-dimensional grid: 1-D values embed as points
// (v, 0, ..., 0) and intervals [a, b] as boxes [a, b] x [0, D)^{d-1}, so
// the 1-D harnesses (experiment runner, matrix tests, benches) can drive
// the multidim mechanisms unchanged. The embedded population's axis-0
// marginal is exactly the 1-D input, so range estimates stay unbiased.
class GridAxisAdapter final : public RangeMechanism {
 public:
  explicit GridAxisAdapter(std::unique_ptr<HierarchicalGrid> grid)
      : RangeMechanism(grid->domain_size(), grid->epsilon()),
        grid_(std::move(grid)) {}

  uint64_t user_count() const override { return grid_->user_count(); }
  std::string Name() const override { return grid_->Name(); }
  double ReportBits() const override { return grid_->ReportBits(); }

  void EncodeUser(uint64_t value, Rng& rng) override {
    std::vector<uint64_t> point(grid_->dimensions(), 0);
    point[0] = value;
    grid_->EncodePoint(point.data(), rng);
  }

  void EncodeUsers(std::span<const uint64_t> values, Rng& rng) override {
    std::vector<uint64_t> point(grid_->dimensions(), 0);
    for (uint64_t value : values) {
      point[0] = value;
      grid_->EncodePoint(point.data(), rng);
    }
  }

  std::unique_ptr<RangeMechanism> CloneEmpty() const override {
    // HierarchicalGrid::CloneEmptyBase returns a HierarchicalGrid.
    auto* grid =
        static_cast<HierarchicalGrid*>(grid_->CloneEmptyBase().release());
    return std::make_unique<GridAxisAdapter>(
        std::unique_ptr<HierarchicalGrid>(grid));
  }

  void MergeFrom(const RangeMechanism& other) override {
    const auto* o = dynamic_cast<const GridAxisAdapter*>(&other);
    LDP_CHECK_MSG(o != nullptr, "MergeFrom requires a GridAxisAdapter");
    grid_->MergeFromBase(*o->grid_);
  }

  void Finalize(Rng& rng) override { grid_->Finalize(rng); }

  double RangeQuery(uint64_t a, uint64_t b) const override {
    return grid_->BoxQuery(MarginalBox(a, b));
  }

  RangeEstimate RangeQueryWithUncertainty(uint64_t a,
                                          uint64_t b) const override {
    return grid_->BoxQueryWithUncertainty(MarginalBox(a, b));
  }

  std::vector<double> EstimateFrequencies() const override {
    std::vector<double> frequencies(domain_);
    for (uint64_t z = 0; z < domain_; ++z) {
      frequencies[z] = RangeQuery(z, z);
    }
    return frequencies;
  }

 private:
  std::vector<AxisInterval> MarginalBox(uint64_t a, uint64_t b) const {
    std::vector<AxisInterval> box(grid_->dimensions(),
                                  AxisInterval{0, domain_ - 1});
    box[0] = AxisInterval{a, b};
    return box;
  }

  std::unique_ptr<HierarchicalGrid> grid_;
};

HierarchicalGridConfig GridConfigOf(const MethodSpec& spec) {
  HierarchicalGridConfig config;
  config.fanout = spec.fanout;
  config.oracle = spec.oracle;
  return config;
}

}  // namespace

MethodSpec MethodSpec::Flat(OracleKind oracle) {
  MethodSpec spec;
  spec.family = MethodFamily::kFlat;
  spec.oracle = oracle;
  return spec;
}

MethodSpec MethodSpec::Hh(uint64_t fanout, OracleKind oracle,
                          bool consistency) {
  MethodSpec spec;
  spec.family = MethodFamily::kHierarchical;
  spec.fanout = fanout;
  spec.oracle = oracle;
  spec.consistency = consistency;
  return spec;
}

MethodSpec MethodSpec::Haar() {
  MethodSpec spec;
  spec.family = MethodFamily::kHaar;
  return spec;
}

MethodSpec MethodSpec::Ahead(uint64_t fanout, OracleKind oracle) {
  AheadConfig config;
  config.fanout = fanout;
  config.oracle = oracle;
  return AheadWith(config);
}

MethodSpec MethodSpec::AheadWith(const AheadConfig& config) {
  MethodSpec spec;
  spec.family = MethodFamily::kAhead;
  spec.fanout = config.fanout;
  spec.oracle = config.oracle;
  spec.consistency = config.consistency;
  spec.ahead = config;
  return spec;
}

MethodSpec MethodSpec::Hier2D(uint64_t fanout, OracleKind oracle) {
  MethodSpec spec;
  spec.family = MethodFamily::kHier2D;
  spec.fanout = fanout;
  spec.oracle = oracle;
  spec.dimensions = 2;
  return spec;
}

MethodSpec MethodSpec::Grid(uint32_t dimensions, uint64_t fanout,
                            OracleKind oracle) {
  MethodSpec spec;
  spec.family = MethodFamily::kGrid;
  spec.fanout = fanout;
  spec.oracle = oracle;
  spec.dimensions = dimensions;
  return spec;
}

std::string MethodSpec::Name() const {
  switch (family) {
    case MethodFamily::kFlat: {
      std::string name = "Flat-";
      name += OracleKindName(oracle);
      return name;
    }
    case MethodFamily::kHierarchical: {
      std::string name = consistency ? "HHc" : "HH";
      name += std::to_string(fanout);
      if (oracle != OracleKind::kOueSimulated) {
        name += "-";
        name += OracleKindName(oracle);
      }
      return name;
    }
    case MethodFamily::kHaar:
      return "HaarHRR";
    case MethodFamily::kAhead:
      return AheadMethodName(ahead);
    case MethodFamily::kHier2D:
    case MethodFamily::kGrid: {
      std::string name = "HH";
      name += std::to_string(dimensions);
      name += "D";
      name += std::to_string(fanout);
      if (oracle != OracleKind::kOueSimulated) {
        name += "-";
        name += OracleKindName(oracle);
      }
      return name;
    }
  }
  return "unknown";
}

std::unique_ptr<MechanismBase> MakeMechanismBase(const MethodSpec& spec,
                                                 uint64_t domain, double eps) {
  switch (spec.family) {
    case MethodFamily::kFlat:
    case MethodFamily::kHierarchical:
    case MethodFamily::kHaar:
    case MethodFamily::kAhead:
      return MakeMechanism(spec, domain, eps);
    case MethodFamily::kHier2D:
      return std::make_unique<Hierarchical2D>(domain, eps,
                                              GridConfigOf(spec));
    case MethodFamily::kGrid:
      return std::make_unique<HierarchicalGrid>(domain, spec.dimensions, eps,
                                                GridConfigOf(spec),
                                                spec.max_total_cells);
  }
  LDP_CHECK_MSG(false, "unknown method family");
  return nullptr;
}

std::unique_ptr<RangeMechanism> MakeMechanism(const MethodSpec& spec,
                                              uint64_t domain, double eps) {
  switch (spec.family) {
    case MethodFamily::kFlat:
      return std::make_unique<FlatMechanism>(domain, eps, spec.oracle);
    case MethodFamily::kHierarchical: {
      HierarchicalConfig config;
      config.fanout = spec.fanout;
      config.oracle = spec.oracle;
      config.consistency = spec.consistency;
      return std::make_unique<HierarchicalMechanism>(domain, eps, config);
    }
    case MethodFamily::kHaar:
      return std::make_unique<HaarHrrMechanism>(domain, eps);
    case MethodFamily::kAhead:
      return std::make_unique<AheadMechanism>(domain, eps, spec.ahead);
    case MethodFamily::kHier2D:
      return std::make_unique<GridAxisAdapter>(
          std::make_unique<Hierarchical2D>(domain, eps, GridConfigOf(spec)));
    case MethodFamily::kGrid:
      return std::make_unique<GridAxisAdapter>(
          std::make_unique<HierarchicalGrid>(domain, spec.dimensions, eps,
                                             GridConfigOf(spec),
                                             spec.max_total_cells));
  }
  LDP_CHECK_MSG(false, "unknown method family");
  return nullptr;
}

}  // namespace ldp
