// Flat range-query mechanism (paper Section 4.2).
//
// The baseline: run one frequency oracle over the whole domain and answer a
// range by summing the per-item estimates. Variance grows linearly with the
// range length (Fact 1: Var = r * V_F), which is what the hierarchical and
// wavelet methods improve on. Kept both as the paper's baseline and because
// it is the most accurate choice for point queries and very short ranges.

#ifndef LDPRANGE_CORE_FLAT_H_
#define LDPRANGE_CORE_FLAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/range_mechanism.h"
#include "frequency/frequency_oracle.h"

namespace ldp {

/// Flat mechanism over any frequency oracle.
class FlatMechanism final : public RangeMechanism {
 public:
  FlatMechanism(uint64_t domain, double eps, OracleKind oracle);

  uint64_t user_count() const override;
  std::string Name() const override;
  double ReportBits() const override;
  void EncodeUser(uint64_t value, Rng& rng) override;
  void EncodeUsers(std::span<const uint64_t> values, Rng& rng) override;
  std::unique_ptr<RangeMechanism> CloneEmpty() const override;
  void MergeFrom(const RangeMechanism& other) override;
  void Finalize(Rng& rng) override;
  double RangeQuery(uint64_t a, uint64_t b) const override;
  RangeEstimate RangeQueryWithUncertainty(uint64_t a,
                                          uint64_t b) const override;
  std::vector<double> EstimateFrequencies() const override;

 private:
  OracleKind oracle_kind_;
  std::unique_ptr<FrequencyOracle> oracle_;
  bool finalized_ = false;
  std::vector<double> frequencies_;
  // prefix_[i] = sum of frequencies_[0..i-1]; makes RangeQuery O(1).
  std::vector<double> prefix_;
};

}  // namespace ldp

#endif  // LDPRANGE_CORE_FLAT_H_
