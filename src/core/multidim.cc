#include "core/multidim.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/bit_util.h"
#include "common/check.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "frequency/grr.h"
#include "frequency/olh.h"
#include "frequency/olh_support_scan.h"
#include "frequency/oue.h"
#include "frequency/sue.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace ldp {

bool GridOracleDeferrable(OracleKind kind) {
  switch (kind) {
    case OracleKind::kOueSimulated:
    case OracleKind::kSueSimulated:
    case OracleKind::kGrr:
    case OracleKind::kOlh:
      return true;
    case OracleKind::kOue:
    case OracleKind::kSue:
    case OracleKind::kHrr:
      return false;
  }
  return false;
}

bool GridCellsWithinBudget(const TreeShape& shape, uint32_t dims,
                           uint64_t budget, uint64_t* total_cells) {
  const uint64_t radix = uint64_t{shape.height()} + 1;
  uint64_t tuple_count = 1;
  for (uint32_t dim = 0; dim < dims; ++dim) {
    if (__builtin_mul_overflow(tuple_count, radix, &tuple_count)) {
      return false;
    }
  }
  // Every non-trivial tuple carries at least fanout >= 2 cells, so more
  // tuples than budget/2 already exceeds the budget; this also bounds the
  // enumeration below.
  if (tuple_count - 1 > budget / 2) return false;
  uint64_t total = 0;
  for (uint64_t t = 1; t < tuple_count; ++t) {
    uint64_t rest = t;
    uint64_t cells = 1;
    for (uint32_t dim = 0; dim < dims; ++dim) {
      uint32_t level = static_cast<uint32_t>(rest % radix);
      rest /= radix;
      if (__builtin_mul_overflow(cells, shape.NodesAtLevel(level), &cells)) {
        return false;
      }
    }
    if (__builtin_add_overflow(total, cells, &total) || total > budget) {
      return false;
    }
  }
  *total_cells = total;
  return true;
}

HierarchicalGrid::HierarchicalGrid(uint64_t domain_per_dim,
                                   uint32_t dimensions, double eps,
                                   const HierarchicalGridConfig& config,
                                   uint64_t max_total_cells)
    : MechanismBase(domain_per_dim, eps),
      dims_(dimensions),
      config_(config),
      shape_(domain_per_dim, config.fanout),
      max_total_cells_(max_total_cells) {
  LDP_CHECK_GE(dims_, 1u);
  LDP_CHECK_MSG(
      GridCellsWithinBudget(shape_, dims_, max_total_cells, &total_cells_),
      "HierarchicalGrid cell budget exceeded; reduce D, d or raise "
      "max_total_cells");
  const uint64_t radix = uint64_t{shape_.height()} + 1;
  tuple_count_ = IntPow(radix, dims_);
  // Enumerate level tuples in mixed radix (h+1)^d, dimension 0 least
  // significant; tuple index 0 is the all-root cell (known exactly, no
  // oracle).
  tuple_cells_.assign(tuple_count_, 1);
  for (uint64_t t = 1; t < tuple_count_; ++t) {
    uint64_t rest = t;
    uint64_t cells = 1;
    for (uint32_t dim = 0; dim < dims_; ++dim) {
      cells *= shape_.NodesAtLevel(static_cast<uint32_t>(rest % radix));
      rest /= radix;
    }
    tuple_cells_[t] = cells;
  }
  deferred_ = config_.decode == GridDecode::kDeferred &&
              GridOracleDeferrable(config_.oracle);
  if (config_.oracle == OracleKind::kOlh) {
    olh_g_ = OlhOptimalHashRange(eps_);
  }
  if (deferred_) {
    // No oracles: ingestion records into the arena columns and Finalize
    // decodes straight into estimates_. The record format needs tuple and
    // cell to fit u32; both are bounded by the cell budget (<= 2^26).
    LDP_CHECK_LE(tuple_count_, uint64_t{1} << 32);
    tuple_reports_.assign(tuple_count_, 0);
  } else {
    grids_.resize(tuple_count_);
    for (uint64_t t = 1; t < tuple_count_; ++t) {
      grids_[t] = MakeOracle(config_.oracle, tuple_cells_[t], eps_);
    }
  }
}

std::unique_ptr<HierarchicalGrid> HierarchicalGrid::Create(
    uint64_t domain_per_dim, uint32_t dimensions, double eps,
    const HierarchicalGridConfig& config, uint64_t max_total_cells,
    std::string* error) {
  auto fail = [&](const char* message) -> std::unique_ptr<HierarchicalGrid> {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  if (domain_per_dim < 2) return fail("domain_per_dim must be >= 2");
  if (dimensions < 1) return fail("dimensions must be >= 1");
  if (!(eps > 0.0)) return fail("epsilon must be positive");
  if (config.fanout < 2) return fail("fanout must be >= 2");
  TreeShape shape(domain_per_dim, config.fanout);
  uint64_t total = 0;
  if (!GridCellsWithinBudget(shape, dimensions, max_total_cells, &total)) {
    return fail(
        "cell budget exceeded: the (h+1)^d level-tuple grids need more "
        "cells than max_total_cells; reduce D, d or raise max_total_cells");
  }
  return std::make_unique<HierarchicalGrid>(domain_per_dim, dimensions, eps,
                                            config, max_total_cells);
}

std::string HierarchicalGrid::Name() const {
  std::string name = "HH";
  name += std::to_string(dims_);
  name += "D";
  name += std::to_string(config_.fanout);
  name += "-";
  name += OracleKindName(config_.oracle);
  return name;
}

double HierarchicalGrid::ReportBits() const {
  // A user reports their sampled level tuple plus one oracle report for
  // that tuple's grid; tuples are sampled uniformly. Deferred mode has no
  // oracle objects, so the per-kind report size is computed analytically
  // (matching the corresponding oracle's ReportBits exactly).
  double bits = 0.0;
  for (uint64_t t = 1; t < tuple_count_; ++t) {
    if (!deferred_) {
      bits += grids_[t]->ReportBits();
      continue;
    }
    switch (config_.oracle) {
      case OracleKind::kOueSimulated:
      case OracleKind::kSueSimulated:
        bits += static_cast<double>(tuple_cells_[t]);
        break;
      case OracleKind::kGrr:
        bits += static_cast<double>(Log2Ceil(tuple_cells_[t]));
        break;
      case OracleKind::kOlh:
        bits += 64.0 + static_cast<double>(Log2Ceil(olh_g_));
        break;
      default:
        LDP_CHECK_MSG(false, "non-deferrable kind in deferred grid");
    }
  }
  double tuple_id_bits = static_cast<double>(Log2Ceil(tuple_count_ - 1));
  return tuple_id_bits + bits / static_cast<double>(tuple_count_ - 1);
}

void HierarchicalGrid::EncodePoint(const uint64_t* coords, Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "EncodePoint after Finalize");
  const uint64_t radix = uint64_t{shape_.height()} + 1;
  for (uint32_t dim = 0; dim < dims_; ++dim) {
    LDP_CHECK_LT(coords[dim], domain_);
  }
  // Uniform level tuple, skipping the all-root tuple 0.
  uint64_t tuple = 1 + rng.UniformInt(tuple_count_ - 1);
  // Decode the tuple and flatten the user's cell within that grid.
  uint64_t rest = tuple;
  uint64_t cell = 0;
  uint64_t cell_stride = 1;
  for (uint32_t dim = 0; dim < dims_; ++dim) {
    uint32_t level = static_cast<uint32_t>(rest % radix);
    rest /= radix;
    cell += shape_.NodeContaining(level, coords[dim]) * cell_stride;
    cell_stride *= shape_.NodesAtLevel(level);
  }
  if (!deferred_) {
    grids_[tuple]->SubmitValue(cell, rng);
    ++users_;
    return;
  }
  // Deferred: perform the oracle's CLIENT-side randomization now (drawing
  // from `rng` exactly as SubmitValue would, so both modes consume one
  // identical stream) and append the compact record; the aggregate-side
  // decode runs once, at Finalize.
  switch (config_.oracle) {
    case OracleKind::kOueSimulated:
    case OracleKind::kSueSimulated:
      // The §5 simulated paths draw no per-user randomness.
      break;
    case OracleKind::kGrr:
      cell = GrrPerturb(cell, tuple_cells_[tuple], eps_, rng);
      break;
    case OracleKind::kOlh: {
      uint64_t seed = rng.Next();
      uint64_t h = SeededHash(seed, cell, olh_g_);
      cell = GrrPerturb(h, olh_g_, eps_, rng);
      rec_seeds_.PushBack(seed);
      break;
    }
    default:
      LDP_CHECK_MSG(false, "non-deferrable kind in deferred grid");
  }
  rec_tuples_.PushBack(static_cast<uint32_t>(tuple));
  rec_cells_.PushBack(static_cast<uint32_t>(cell));
  ++tuple_reports_[tuple];
  ++users_;
}

void HierarchicalGrid::EncodePoints(std::span<const uint64_t> coords,
                                    Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "EncodePoints after Finalize");
  LDP_CHECK_EQ(coords.size() % dims_, size_t{0});
  // Same draw order as the EncodePoint loop (tuple pick, then submit).
  for (size_t i = 0; i < coords.size(); i += dims_) {
    EncodePoint(coords.data() + i, rng);
  }
}

std::unique_ptr<MechanismBase> HierarchicalGrid::CloneEmptyBase() const {
  return std::make_unique<HierarchicalGrid>(domain_, dims_, eps_, config_,
                                            max_total_cells_);
}

void HierarchicalGrid::MergeFromBase(const MechanismBase& other) {
  const auto* o = dynamic_cast<const HierarchicalGrid*>(&other);
  LDP_CHECK_MSG(o != nullptr, "MergeFromBase requires a HierarchicalGrid");
  LDP_CHECK_MSG(!finalized_ && !o->finalized_,
                "cannot merge finalized mechanisms");
  LDP_CHECK(o->domain_ == domain_);
  LDP_CHECK(o->dims_ == dims_);
  LDP_CHECK(o->config_.fanout == config_.fanout);
  LDP_CHECK(o->config_.oracle == config_.oracle);
  LDP_CHECK(o->deferred_ == deferred_);
  if (deferred_) {
    // O(1) in the record count: the columns adopt the shard's arena
    // blocks. This consumes the shard's records — allowed by the sharding
    // contract (a merged shard is discarded, exactly like OlhOracle's
    // pending queue).
    auto* shard = const_cast<HierarchicalGrid*>(o);
    rec_tuples_.Adopt(std::move(shard->rec_tuples_));
    rec_cells_.Adopt(std::move(shard->rec_cells_));
    rec_seeds_.Adopt(std::move(shard->rec_seeds_));
    for (uint64_t t = 1; t < tuple_count_; ++t) {
      tuple_reports_[t] += o->tuple_reports_[t];
    }
  } else {
    for (uint64_t t = 1; t < tuple_count_; ++t) {
      grids_[t]->MergeFrom(*o->grids_[t]);
    }
  }
  users_ += o->users_;
}

void HierarchicalGrid::Finalize(Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "Finalize called twice");
  if (deferred_) {
    FinalizeDeferred(rng);
  } else {
    FinalizeEager(rng);
  }
  finalized_ = true;
}

void HierarchicalGrid::FinalizeEager(Rng& rng) {
  estimates_.resize(tuple_count_);
  estimates_[0] = {1.0};  // the all-root cell
  // Fork one decode stream per tuple, in tuple order — the SAME forking
  // discipline as the deferred path, which is what makes the two modes
  // bit-identical: tuple t's noise comes from Rng(seeds[t]) regardless of
  // mode, thread count, or which worker runs it.
  std::vector<uint64_t> seeds(tuple_count_, 0);
  for (uint64_t t = 1; t < tuple_count_; ++t) seeds[t] = rng.Next();
  const uint64_t tuples = tuple_count_ - 1;
  unsigned threads =
      finalize_threads_ != 0 ? finalize_threads_ : HardwareThreads();
  ParallelFor(tuples, threads, [&](unsigned, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      const uint64_t t = i + 1;
      // OLH oracles would otherwise fan out their own decode inside this
      // already-parallel loop; keep each tuple's scan on its worker.
      if (auto* olh = dynamic_cast<OlhOracle*>(grids_[t].get())) {
        olh->set_decode_threads(1);
      }
      Rng tuple_rng(seeds[t]);
      grids_[t]->Finalize(tuple_rng);
      estimates_[t] = grids_[t]->EstimateFractions();
    }
  });
}

void HierarchicalGrid::FinalizeDeferred(Rng& rng) {
  // Global-registry timing: the deferred decode is the grid's dominant
  // finalize cost and the subject of the CI perf gate.
  static obs::LatencyHistogram* const scan_ns =
      &obs::MetricsRegistry::Global().GetHistogram("grid.deferred_scan_ns");
  obs::ScopedTimer scan_timer(scan_ns, "grid.deferred_scan");
  // One flat, write-once estimate buffer (see the member comment): offsets
  // are prefix sums of the per-tuple cell counts, the all-root cell sits
  // at slot 0.
  tuple_offset_.assign(tuple_count_ + 1, 0);
  for (uint64_t t = 0; t < tuple_count_; ++t) {
    tuple_offset_[t + 1] = tuple_offset_[t] + tuple_cells_[t];
  }
  flat_estimates_.reset(new double[tuple_offset_[tuple_count_]]);
  flat_estimates_[0] = 1.0;
  tuple_variance_.assign(tuple_count_, 0.0);
  // Identical stream forking as FinalizeEager (see comment there).
  std::vector<uint64_t> seeds(tuple_count_, 0);
  for (uint64_t t = 1; t < tuple_count_; ++t) seeds[t] = rng.Next();

  // Partition the records by tuple (counting sort off the per-tuple report
  // totals maintained at ingest): after this every tuple's cells (and
  // seeds, for OLH) sit in one contiguous slice, so the per-tuple decode
  // below is a single linear scan.
  const uint64_t n_records = rec_tuples_.size();
  LDP_CHECK(rec_cells_.size() == n_records);
  const bool olh = config_.oracle == OracleKind::kOlh;
  std::vector<uint64_t> rec_offset(tuple_count_ + 1, 0);
  for (uint64_t t = 0; t < tuple_count_; ++t) {
    rec_offset[t + 1] = rec_offset[t] + tuple_reports_[t];
  }
  LDP_CHECK(rec_offset[tuple_count_] == n_records);
  std::vector<uint32_t> cells_by_tuple(n_records);
  std::vector<uint64_t> seeds_by_tuple(olh ? n_records : 0);
  {
    std::vector<uint64_t> cursor(rec_offset.begin(), rec_offset.end() - 1);
    const auto tuple_chunks = rec_tuples_.Chunks();
    const auto cell_chunks = rec_cells_.Chunks();
    const auto seed_chunks = rec_seeds_.Chunks();
    LDP_CHECK(cell_chunks.size() == tuple_chunks.size());
    LDP_CHECK(!olh || seed_chunks.size() == tuple_chunks.size());
    for (size_t s = 0; s < tuple_chunks.size(); ++s) {
      const uint32_t* tuples = tuple_chunks[s].data;
      const uint32_t* cells = cell_chunks[s].data;
      const uint64_t* sds = olh ? seed_chunks[s].data : nullptr;
      LDP_CHECK(cell_chunks[s].size == tuple_chunks[s].size);
      for (uint64_t i = 0; i < tuple_chunks[s].size; ++i) {
        const uint64_t pos = cursor[tuples[i]]++;
        cells_by_tuple[pos] = cells[i];
        if (olh) seeds_by_tuple[pos] = sds[i];
      }
    }
  }

  // One decode per tuple, sharded over tuples: histogram (or support-scan)
  // the tuple's slice, then fuse the aggregate noise draw with the
  // debiased estimate — arithmetic identical to the corresponding
  // oracle's Finalize + EstimateFractions. Per-tuple Rng(seeds[t]) makes
  // the result independent of the sharding.
  const uint64_t tuples = tuple_count_ - 1;
  unsigned threads =
      finalize_threads_ != 0 ? finalize_threads_ : HardwareThreads();
  ParallelFor(tuples, threads, [&](unsigned, uint64_t begin, uint64_t end) {
    // Per-worker count scratch, reused across the worker's tuples and
    // first-touched here (NUMA: pages live on the node that scans them).
    std::vector<uint64_t> counts;
    for (uint64_t i = begin; i < end; ++i) {
      const uint64_t t = i + 1;
      const uint64_t cells_t = tuple_cells_[t];
      const uint64_t n_t = tuple_reports_[t];
      double* const est = flat_estimates_.get() + tuple_offset_[t];
      if (n_t == 0) {
        // An empty oracle estimates all zeros with infinite variance.
        std::fill(est, est + cells_t, 0.0);
        tuple_variance_[t] = std::numeric_limits<double>::infinity();
        continue;
      }
      const uint32_t* slice = cells_by_tuple.data() + rec_offset[t];
      const double dn = static_cast<double>(n_t);
      Rng tuple_rng(seeds[t]);
      switch (config_.oracle) {
        case OracleKind::kOueSimulated: {
          counts.assign(cells_t, 0);
          for (uint64_t r = 0; r < n_t; ++r) ++counts[slice[r]];
          const OueAggregateNoiser noiser(n_t, eps_);
          for (uint64_t j = 0; j < cells_t; ++j) {
            est[j] = noiser.Estimate(noiser.NoisyCount(counts[j], tuple_rng));
          }
          tuple_variance_[t] = OracleVariance(eps_, dn);
          break;
        }
        case OracleKind::kSueSimulated: {
          counts.assign(cells_t, 0);
          for (uint64_t r = 0; r < n_t; ++r) ++counts[slice[r]];
          const SueAggregateNoiser noiser(n_t, eps_);
          for (uint64_t j = 0; j < cells_t; ++j) {
            est[j] = noiser.Estimate(noiser.NoisyCount(counts[j], tuple_rng));
          }
          tuple_variance_[t] = SueVariance(eps_, dn);
          break;
        }
        case OracleKind::kGrr: {
          counts.assign(cells_t, 0);
          for (uint64_t r = 0; r < n_t; ++r) ++counts[slice[r]];
          // Expression-for-expression GrrDebias (frequency/grr.cc), writing
          // into the flat buffer instead of a returned vector.
          const double p = GrrTruthProbability(cells_t, eps_);
          const double q = (1.0 - p) / (static_cast<double>(cells_t) - 1.0);
          for (uint64_t j = 0; j < cells_t; ++j) {
            est[j] = (static_cast<double>(counts[j]) / dn - q) / (p - q);
          }
          tuple_variance_[t] = GrrLowFrequencyVariance(cells_t, eps_, n_t);
          break;
        }
        case OracleKind::kOlh: {
          counts.assign(cells_t, 0);
          OlhAccumulateSupport(seeds_by_tuple.data() + rec_offset[t], slice,
                               n_t, olh_g_, cells_t, counts.data());
          const double p = GrrTruthProbability(olh_g_, eps_);
          const double q = 1.0 / static_cast<double>(olh_g_);
          for (uint64_t j = 0; j < cells_t; ++j) {
            est[j] = (static_cast<double>(counts[j]) / dn - q) / (p - q);
          }
          tuple_variance_[t] = q * (1.0 - q) / (dn * (p - q) * (p - q));
          break;
        }
        default:
          LDP_CHECK_MSG(false, "non-deferrable kind in deferred grid");
      }
    }
  });
  // Retain the arena blocks: a reused mechanism (or the next session on a
  // merged aggregate) refills them without new system allocations.
  rec_tuples_.Clear();
  rec_cells_.Clear();
  rec_seeds_.Clear();
}

double HierarchicalGrid::BoxQuery(std::span<const AxisInterval> box) const {
  LDP_CHECK_MSG(finalized_, "BoxQuery before Finalize");
  double total = 0.0;
  VisitGridBoxCells(shape_, dims_, box, [&](uint64_t tuple, uint64_t cell) {
    total += EstimateAt(tuple, cell);
  });
  return total;
}

RangeEstimate HierarchicalGrid::BoxQueryWithUncertainty(
    std::span<const AxisInterval> box) const {
  LDP_CHECK_MSG(finalized_, "BoxQuery before Finalize");
  // Sum the per-cell estimator variances of the cross-product assembly
  // (the Section 6 analogue of Theorem 4.3's accounting); the all-root
  // cell is known exactly.
  double total = 0.0;
  double variance = 0.0;
  VisitGridBoxCells(shape_, dims_, box, [&](uint64_t tuple, uint64_t cell) {
    total += EstimateAt(tuple, cell);
    if (tuple != 0) {
      variance += deferred_ ? tuple_variance_[tuple]
                            : grids_[tuple]->EstimatorVariance();
    }
  });
  return RangeEstimate{total, std::sqrt(variance)};
}

}  // namespace ldp
