#include "core/multidim.h"

#include "common/bit_util.h"
#include "common/check.h"

namespace ldp {

Hierarchical2D::Hierarchical2D(uint64_t domain_per_dim, double eps,
                               const Hierarchical2DConfig& config)
    : domain_(domain_per_dim),
      eps_(eps),
      config_(config),
      shape_(domain_per_dim, config.fanout) {
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
  const uint32_t h = shape_.height();
  grids_.resize((h + 1) * (h + 1));
  for (uint32_t lx = 0; lx <= h; ++lx) {
    for (uint32_t ly = 0; ly <= h; ++ly) {
      if (lx == 0 && ly == 0) continue;  // whole plane: known exactly
      uint64_t cells = shape_.NodesAtLevel(lx) * shape_.NodesAtLevel(ly);
      grids_[PairIndex(lx, ly)] = MakeOracle(config_.oracle, cells, eps_);
    }
  }
}

size_t Hierarchical2D::PairIndex(uint32_t lx, uint32_t ly) const {
  return static_cast<size_t>(lx) * (shape_.height() + 1) + ly;
}

std::string Hierarchical2D::Name() const {
  std::string name = "HH2D";
  name += std::to_string(config_.fanout);
  name += "-";
  name += OracleKindName(config_.oracle);
  return name;
}

void Hierarchical2D::EncodeUser(uint64_t x, uint64_t y, Rng& rng) {
  LDP_CHECK_LT(x, domain_);
  LDP_CHECK_LT(y, domain_);
  LDP_CHECK_MSG(!finalized_, "EncodeUser after Finalize");
  const uint32_t h = shape_.height();
  // Uniform level pair, skipping (0,0).
  uint64_t pair = 1 + rng.UniformInt(
      static_cast<uint64_t>(h + 1) * (h + 1) - 1);
  uint32_t lx = static_cast<uint32_t>(pair / (h + 1));
  uint32_t ly = static_cast<uint32_t>(pair % (h + 1));
  uint64_t nx = shape_.NodeContaining(lx, x);
  uint64_t ny = shape_.NodeContaining(ly, y);
  uint64_t cell = nx * shape_.NodesAtLevel(ly) + ny;
  grids_[PairIndex(lx, ly)]->SubmitValue(cell, rng);
  ++users_;
}

void Hierarchical2D::Finalize(Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "Finalize called twice");
  estimates_.resize(grids_.size());
  for (size_t i = 0; i < grids_.size(); ++i) {
    if (grids_[i] == nullptr) {
      estimates_[i] = {1.0};  // the (0,0) cell
      continue;
    }
    grids_[i]->Finalize(rng);
    estimates_[i] = grids_[i]->EstimateFractions();
  }
  finalized_ = true;
}

HierarchicalGrid::HierarchicalGrid(uint64_t domain_per_dim,
                                   uint32_t dimensions, double eps,
                                   const Hierarchical2DConfig& config,
                                   uint64_t max_total_cells)
    : domain_(domain_per_dim),
      dims_(dimensions),
      eps_(eps),
      config_(config),
      shape_(domain_per_dim, config.fanout) {
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
  LDP_CHECK_GE(dims_, 1u);
  const uint32_t h = shape_.height();
  tuple_count_ = IntPow(h + 1, dims_);
  grids_.resize(tuple_count_);
  // Enumerate level tuples in mixed radix (h+1)^d; tuple index 0 is the
  // all-root cell (known exactly, no oracle).
  std::vector<uint32_t> levels(dims_, 0);
  for (uint64_t t = 1; t < tuple_count_; ++t) {
    uint64_t rest = t;
    uint64_t cells = 1;
    for (uint32_t dim = 0; dim < dims_; ++dim) {
      levels[dim] = static_cast<uint32_t>(rest % (h + 1));
      rest /= (h + 1);
      cells *= shape_.NodesAtLevel(levels[dim]);
    }
    total_cells_ += cells;
    LDP_CHECK_MSG(total_cells_ <= max_total_cells,
                  "HierarchicalGrid cell budget exceeded; reduce D, d or "
                  "raise max_total_cells");
    grids_[t] = MakeOracle(config_.oracle, cells, eps_);
  }
}

size_t HierarchicalGrid::TupleIndex(
    const std::vector<uint32_t>& levels) const {
  const uint32_t h = shape_.height();
  size_t index = 0;
  for (uint32_t dim = dims_; dim-- > 0;) {
    index = index * (h + 1) + levels[dim];
  }
  return index;
}

void HierarchicalGrid::EncodeUser(const std::vector<uint64_t>& point,
                                  Rng& rng) {
  LDP_CHECK_EQ(point.size(), static_cast<size_t>(dims_));
  LDP_CHECK_MSG(!finalized_, "EncodeUser after Finalize");
  for (uint64_t coordinate : point) {
    LDP_CHECK_LT(coordinate, domain_);
  }
  const uint32_t h = shape_.height();
  uint64_t tuple = 1 + rng.UniformInt(tuple_count_ - 1);
  // Decode the tuple and flatten the user's cell within that grid.
  uint64_t rest = tuple;
  uint64_t cell = 0;
  uint64_t cell_stride = 1;
  for (uint32_t dim = 0; dim < dims_; ++dim) {
    uint32_t level = static_cast<uint32_t>(rest % (h + 1));
    rest /= (h + 1);
    cell += shape_.NodeContaining(level, point[dim]) * cell_stride;
    cell_stride *= shape_.NodesAtLevel(level);
  }
  grids_[tuple]->SubmitValue(cell, rng);
  ++users_;
}

void HierarchicalGrid::Finalize(Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "Finalize called twice");
  estimates_.resize(grids_.size());
  for (size_t t = 0; t < grids_.size(); ++t) {
    if (grids_[t] == nullptr) {
      estimates_[t] = {1.0};
      continue;
    }
    grids_[t]->Finalize(rng);
    estimates_[t] = grids_[t]->EstimateFractions();
  }
  finalized_ = true;
}

double HierarchicalGrid::RangeQuery(
    const std::vector<AxisRange>& box) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_EQ(box.size(), static_cast<size_t>(dims_));
  const uint32_t h = shape_.height();
  std::vector<std::vector<TreeNode>> axis_nodes(dims_);
  for (uint32_t dim = 0; dim < dims_; ++dim) {
    LDP_CHECK_LE(box[dim].lo, box[dim].hi);
    LDP_CHECK_LT(box[dim].hi, domain_);
    axis_nodes[dim] = shape_.Decompose(box[dim].lo, box[dim].hi);
  }
  // Walk the cross product of the per-axis decompositions.
  std::vector<size_t> pick(dims_, 0);
  double total = 0.0;
  for (;;) {
    uint64_t tuple = 0;
    uint64_t cell = 0;
    uint64_t cell_stride = 1;
    uint64_t tuple_stride = 1;
    for (uint32_t dim = 0; dim < dims_; ++dim) {
      const TreeNode& node = axis_nodes[dim][pick[dim]];
      tuple += static_cast<uint64_t>(node.level) * tuple_stride;
      tuple_stride *= (h + 1);
      cell += node.index * cell_stride;
      cell_stride *= shape_.NodesAtLevel(node.level);
    }
    total += estimates_[tuple][cell];
    // Advance the odometer.
    uint32_t dim = 0;
    for (; dim < dims_; ++dim) {
      if (++pick[dim] < axis_nodes[dim].size()) break;
      pick[dim] = 0;
    }
    if (dim == dims_) break;
  }
  return total;
}

double Hierarchical2D::RangeQuery(uint64_t ax, uint64_t bx, uint64_t ay,
                                  uint64_t by) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_LE(ax, bx);
  LDP_CHECK_LE(ay, by);
  LDP_CHECK_LT(bx, domain_);
  LDP_CHECK_LT(by, domain_);
  std::vector<TreeNode> xs = shape_.Decompose(ax, bx);
  std::vector<TreeNode> ys = shape_.Decompose(ay, by);
  double total = 0.0;
  for (const TreeNode& nx : xs) {
    for (const TreeNode& ny : ys) {
      const std::vector<double>& grid =
          estimates_[PairIndex(nx.level, ny.level)];
      uint64_t cell = nx.index * shape_.NodesAtLevel(ny.level) + ny.index;
      total += grid[cell];
    }
  }
  return total;
}

}  // namespace ldp
