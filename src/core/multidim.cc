#include "core/multidim.h"

#include <cmath>
#include <utility>

#include "common/bit_util.h"
#include "common/check.h"

namespace ldp {

bool GridCellsWithinBudget(const TreeShape& shape, uint32_t dims,
                           uint64_t budget, uint64_t* total_cells) {
  const uint64_t radix = uint64_t{shape.height()} + 1;
  uint64_t tuple_count = 1;
  for (uint32_t dim = 0; dim < dims; ++dim) {
    if (__builtin_mul_overflow(tuple_count, radix, &tuple_count)) {
      return false;
    }
  }
  // Every non-trivial tuple carries at least fanout >= 2 cells, so more
  // tuples than budget/2 already exceeds the budget; this also bounds the
  // enumeration below.
  if (tuple_count - 1 > budget / 2) return false;
  uint64_t total = 0;
  for (uint64_t t = 1; t < tuple_count; ++t) {
    uint64_t rest = t;
    uint64_t cells = 1;
    for (uint32_t dim = 0; dim < dims; ++dim) {
      uint32_t level = static_cast<uint32_t>(rest % radix);
      rest /= radix;
      if (__builtin_mul_overflow(cells, shape.NodesAtLevel(level), &cells)) {
        return false;
      }
    }
    if (__builtin_add_overflow(total, cells, &total) || total > budget) {
      return false;
    }
  }
  *total_cells = total;
  return true;
}

HierarchicalGrid::HierarchicalGrid(uint64_t domain_per_dim,
                                   uint32_t dimensions, double eps,
                                   const HierarchicalGridConfig& config,
                                   uint64_t max_total_cells)
    : MechanismBase(domain_per_dim, eps),
      dims_(dimensions),
      config_(config),
      shape_(domain_per_dim, config.fanout),
      max_total_cells_(max_total_cells) {
  LDP_CHECK_GE(dims_, 1u);
  LDP_CHECK_MSG(
      GridCellsWithinBudget(shape_, dims_, max_total_cells, &total_cells_),
      "HierarchicalGrid cell budget exceeded; reduce D, d or raise "
      "max_total_cells");
  const uint64_t radix = uint64_t{shape_.height()} + 1;
  tuple_count_ = IntPow(radix, dims_);
  grids_.resize(tuple_count_);
  // Enumerate level tuples in mixed radix (h+1)^d, dimension 0 least
  // significant; tuple index 0 is the all-root cell (known exactly, no
  // oracle).
  for (uint64_t t = 1; t < tuple_count_; ++t) {
    uint64_t rest = t;
    uint64_t cells = 1;
    for (uint32_t dim = 0; dim < dims_; ++dim) {
      cells *= shape_.NodesAtLevel(static_cast<uint32_t>(rest % radix));
      rest /= radix;
    }
    grids_[t] = MakeOracle(config_.oracle, cells, eps_);
  }
}

std::unique_ptr<HierarchicalGrid> HierarchicalGrid::Create(
    uint64_t domain_per_dim, uint32_t dimensions, double eps,
    const HierarchicalGridConfig& config, uint64_t max_total_cells,
    std::string* error) {
  auto fail = [&](const char* message) -> std::unique_ptr<HierarchicalGrid> {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  if (domain_per_dim < 2) return fail("domain_per_dim must be >= 2");
  if (dimensions < 1) return fail("dimensions must be >= 1");
  if (!(eps > 0.0)) return fail("epsilon must be positive");
  if (config.fanout < 2) return fail("fanout must be >= 2");
  TreeShape shape(domain_per_dim, config.fanout);
  uint64_t total = 0;
  if (!GridCellsWithinBudget(shape, dimensions, max_total_cells, &total)) {
    return fail(
        "cell budget exceeded: the (h+1)^d level-tuple grids need more "
        "cells than max_total_cells; reduce D, d or raise max_total_cells");
  }
  return std::make_unique<HierarchicalGrid>(domain_per_dim, dimensions, eps,
                                            config, max_total_cells);
}

std::string HierarchicalGrid::Name() const {
  std::string name = "HH";
  name += std::to_string(dims_);
  name += "D";
  name += std::to_string(config_.fanout);
  name += "-";
  name += OracleKindName(config_.oracle);
  return name;
}

double HierarchicalGrid::ReportBits() const {
  // A user reports their sampled level tuple plus one oracle report for
  // that tuple's grid; tuples are sampled uniformly.
  double bits = 0.0;
  for (uint64_t t = 1; t < tuple_count_; ++t) {
    bits += grids_[t]->ReportBits();
  }
  double tuple_id_bits = static_cast<double>(Log2Ceil(tuple_count_ - 1));
  return tuple_id_bits + bits / static_cast<double>(tuple_count_ - 1);
}

void HierarchicalGrid::EncodePoint(const uint64_t* coords, Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "EncodePoint after Finalize");
  const uint64_t radix = uint64_t{shape_.height()} + 1;
  for (uint32_t dim = 0; dim < dims_; ++dim) {
    LDP_CHECK_LT(coords[dim], domain_);
  }
  // Uniform level tuple, skipping the all-root tuple 0.
  uint64_t tuple = 1 + rng.UniformInt(tuple_count_ - 1);
  // Decode the tuple and flatten the user's cell within that grid.
  uint64_t rest = tuple;
  uint64_t cell = 0;
  uint64_t cell_stride = 1;
  for (uint32_t dim = 0; dim < dims_; ++dim) {
    uint32_t level = static_cast<uint32_t>(rest % radix);
    rest /= radix;
    cell += shape_.NodeContaining(level, coords[dim]) * cell_stride;
    cell_stride *= shape_.NodesAtLevel(level);
  }
  grids_[tuple]->SubmitValue(cell, rng);
  ++users_;
}

void HierarchicalGrid::EncodePoints(std::span<const uint64_t> coords,
                                    Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "EncodePoints after Finalize");
  LDP_CHECK_EQ(coords.size() % dims_, size_t{0});
  // Same draw order as the EncodePoint loop (tuple pick, then submit).
  for (size_t i = 0; i < coords.size(); i += dims_) {
    EncodePoint(coords.data() + i, rng);
  }
}

std::unique_ptr<MechanismBase> HierarchicalGrid::CloneEmptyBase() const {
  return std::make_unique<HierarchicalGrid>(domain_, dims_, eps_, config_,
                                            max_total_cells_);
}

void HierarchicalGrid::MergeFromBase(const MechanismBase& other) {
  const auto* o = dynamic_cast<const HierarchicalGrid*>(&other);
  LDP_CHECK_MSG(o != nullptr, "MergeFromBase requires a HierarchicalGrid");
  LDP_CHECK_MSG(!finalized_ && !o->finalized_,
                "cannot merge finalized mechanisms");
  LDP_CHECK(o->domain_ == domain_);
  LDP_CHECK(o->dims_ == dims_);
  LDP_CHECK(o->config_.fanout == config_.fanout);
  LDP_CHECK(o->config_.oracle == config_.oracle);
  for (uint64_t t = 1; t < tuple_count_; ++t) {
    grids_[t]->MergeFrom(*o->grids_[t]);
  }
  users_ += o->users_;
}

void HierarchicalGrid::Finalize(Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "Finalize called twice");
  estimates_.resize(grids_.size());
  for (size_t t = 0; t < grids_.size(); ++t) {
    if (grids_[t] == nullptr) {
      estimates_[t] = {1.0};  // the all-root cell
      continue;
    }
    grids_[t]->Finalize(rng);
    estimates_[t] = grids_[t]->EstimateFractions();
  }
  finalized_ = true;
}

double HierarchicalGrid::BoxQuery(std::span<const AxisInterval> box) const {
  LDP_CHECK_MSG(finalized_, "BoxQuery before Finalize");
  double total = 0.0;
  VisitGridBoxCells(shape_, dims_, box, [&](uint64_t tuple, uint64_t cell) {
    total += estimates_[tuple][cell];
  });
  return total;
}

RangeEstimate HierarchicalGrid::BoxQueryWithUncertainty(
    std::span<const AxisInterval> box) const {
  LDP_CHECK_MSG(finalized_, "BoxQuery before Finalize");
  // Sum the per-cell estimator variances of the cross-product assembly
  // (the Section 6 analogue of Theorem 4.3's accounting); the all-root
  // cell is known exactly.
  double total = 0.0;
  double variance = 0.0;
  VisitGridBoxCells(shape_, dims_, box, [&](uint64_t tuple, uint64_t cell) {
    total += estimates_[tuple][cell];
    if (tuple != 0) variance += grids_[tuple]->EstimatorVariance();
  });
  return RangeEstimate{total, std::sqrt(variance)};
}

}  // namespace ldp
