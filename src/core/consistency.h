// Constrained-inference post-processing for hierarchical histograms
// (paper Section 4.5, adapting Hay et al., VLDB 2010 to the local model).
//
// The HH tree is redundant: a parent's fraction should equal the sum of its
// children's. Replacing the raw per-node estimates by the least-squares
// solution under those constraints (a) never hurts and provably shrinks the
// per-node variance by at least a factor B/(B+1) (Lemma 4.6), and (b) makes
// every way of assembling a range answer agree. Hay et al.'s two linear
// passes compute the exact least-squares solution:
//
//   Stage 1 (weighted averaging, bottom-up):
//     fbar(v) = (B^i - B^{i-1})/(B^i - 1) * f(v)
//             + (B^{i-1} - 1)/(B^i - 1)  * sum_children fbar(u)
//     where i is the node's height (leaves have i = 1, so fbar = f there).
//
//   Stage 2 (mean consistency, top-down):
//     fhat(v) = fbar(v) + (1/B) * [ fhat(parent) - sum_siblings fbar(u) ]
//
// Local-model departures from Hay et al. (paper "Key difference" box): the
// tree stores *fractions* (level sampling makes per-level counts random),
// and the root is pinned to exactly 1 — in the local model the root's value
// is known a priori, every user's path contains it.

// The irregular-tree entry points at the bottom generalize both passes to
// AHEAD-style adaptive trees (core/ahead.h), where leaves occur at mixed
// depths and per-node estimator variances differ: the fixed (B^i - B^{i-1})
// / (B^i - 1) weights above are exactly the inverse-variance weights when
// every node has the same variance, so the generalization replaces them by
// explicit 1/Var weights and reduces to Hay et al. on a complete tree.

#ifndef LDPRANGE_CORE_CONSISTENCY_H_
#define LDPRANGE_CORE_CONSISTENCY_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ldp {

/// In-place constrained inference over per-level node estimates.
/// `levels[l]` holds the B^l node estimates at depth l; `levels[0]` must be
/// the single root entry. After the call, every parent equals the sum of
/// its children exactly.
///
/// `root_pin`: when set, the root is fixed to this exactly-known value
/// before the top-down pass — the local model pins it to 1 (every user's
/// path contains the root); the centralized baselines leave it unset and
/// keep the root's weighted-average estimate (Hay et al.'s original form).
void EnforceHierarchicalConsistency(std::vector<std::vector<double>>& levels,
                                    uint64_t fanout,
                                    std::optional<double> root_pin = 1.0);

/// Stage 1 only (exposed for tests): bottom-up weighted averaging.
void WeightedAverageBottomUp(std::vector<std::vector<double>>& levels,
                             uint64_t fanout);

/// Stage 2 only (exposed for tests): top-down mean consistency.
void MeanConsistencyTopDown(std::vector<std::vector<double>>& levels,
                            uint64_t fanout,
                            std::optional<double> root_pin = 1.0);

/// Constrained inference over an *irregular* tree given as parent indices:
/// `parents[i]` is the index of node i's parent, -1 for the root (node 0),
/// and nodes are topologically ordered (parents[i] < i — BFS order works).
/// `values[i]` / `variances[i]` hold each node's raw estimate and its
/// estimator variance (+inf for a node with no reports, 0 for an exactly
/// known value).
///
/// Bottom-up, each internal node is replaced by the inverse-variance
/// weighted average of its own estimate and its children's sum (the GLS
/// combination; identical to Hay et al.'s weights when variances are
/// uniform), with `variances` updated to the combined values. Top-down,
/// the parent/children mismatch is redistributed onto the children
/// proportionally to their variance (equal shares when uniform), after
/// which every parent equals the sum of its children exactly. `root_pin`
/// as in EnforceHierarchicalConsistency.
void EnforceAdaptiveConsistency(std::span<const int64_t> parents,
                                std::vector<double>& values,
                                std::vector<double>& variances,
                                std::optional<double> root_pin = 1.0);

/// Non-negativity projection for an irregular tree (same `parents` layout):
/// clamps negatives to zero top-down and rescales each sibling family so it
/// still sums to its parent, preserving the consistency invariant. The one
/// post-processing step here that is *not* unbiased; callers gate it on a
/// config knob.
void NonNegativeRescaleTopDown(std::span<const int64_t> parents,
                               std::vector<double>& values);

}  // namespace ldp

#endif  // LDPRANGE_CORE_CONSISTENCY_H_
