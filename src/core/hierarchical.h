// Hierarchical Histograms under LDP (paper Sections 4.3–4.5).
//
// Each user views their value as a root-to-leaf path in a complete B-ary
// tree over the domain, samples ONE level uniformly at random (Lemma 4.4
// shows uniform sampling minimizes the variance sum), and reports their
// one-hot node-indicator vector for that level through a frequency oracle.
// The aggregator debiases per level, obtaining for every tree node an
// unbiased estimate of the *fraction* of the population in its block, and
// answers a range query by summing the nodes of its B-adic decomposition —
// at most 2(B-1) nodes per level (Theorem 4.3: Var <= (2B-1) V_F h alpha).
//
// Level sampling — not budget splitting — is the paper's key departure from
// the centralized literature: splitting eps across h levels costs a factor
// h^2, sampling only h. (The ablation bench quantifies this.)
//
// Optional constrained inference (consistency.h) implements Section 4.5 and
// is what the paper's "HHc_B" rows use.

#ifndef LDPRANGE_CORE_HIERARCHICAL_H_
#define LDPRANGE_CORE_HIERARCHICAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/badic.h"
#include "core/range_mechanism.h"
#include "frequency/frequency_oracle.h"

namespace ldp {

/// How the privacy budget is spread over tree levels.
enum class BudgetStrategy {
  /// Each user samples ONE level and spends the whole eps there — the
  /// paper's choice, with error proportional to h (Theorem 4.3).
  kSampling,
  /// Each user reports at EVERY level with eps/h each (the centralized
  /// idiom, by sequential composition). Kept as an ablation: the paper
  /// shows this costs a factor ~h^2 locally.
  kSplitting,
};

/// Configuration for the HH_B mechanism.
struct HierarchicalConfig {
  uint64_t fanout = 4;                          // B
  OracleKind oracle = OracleKind::kOueSimulated;  // per-level primitive F
  bool consistency = true;                      // apply Section 4.5 CI
  BudgetStrategy budget = BudgetStrategy::kSampling;
  /// Per-level sampling weights; empty = uniform (the optimum, Lemma 4.4).
  /// Index 0 corresponds to tree level 1 (the root needs no reports).
  /// Only meaningful under kSampling.
  std::vector<double> level_weights;
};

/// Hierarchical histogram mechanism HH_B / HHc_B.
class HierarchicalMechanism final : public RangeMechanism {
 public:
  HierarchicalMechanism(uint64_t domain, double eps,
                        const HierarchicalConfig& config);

  const TreeShape& shape() const { return shape_; }
  bool consistency_enabled() const { return config_.consistency; }

  uint64_t user_count() const override { return users_; }
  std::string Name() const override;
  double ReportBits() const override;
  void EncodeUser(uint64_t value, Rng& rng) override;
  void EncodeUsers(std::span<const uint64_t> values, Rng& rng) override;
  std::unique_ptr<RangeMechanism> CloneEmpty() const override;
  void MergeFrom(const RangeMechanism& other) override;
  void Finalize(Rng& rng) override;
  double RangeQuery(uint64_t a, uint64_t b) const override;
  RangeEstimate RangeQueryWithUncertainty(uint64_t a,
                                          uint64_t b) const override;
  std::vector<double> EstimateFrequencies() const override;

  /// Post-Finalize estimate for one tree node's population fraction.
  double NodeEstimate(const TreeNode& node) const;

  /// Number of users that sampled tree level l (1-based; post-encode).
  uint64_t LevelReportCount(uint32_t level) const;

 private:
  HierarchicalConfig config_;
  TreeShape shape_;
  // level_oracles_[l-1] covers tree level l (domain B^l), l = 1..height.
  std::vector<std::unique_ptr<FrequencyOracle>> level_oracles_;
  std::vector<double> sampling_weights_;
  uint64_t users_ = 0;
  bool finalized_ = false;
  // estimates_[l] = per-node fractions at depth l; estimates_[0] = {1}.
  std::vector<std::vector<double>> estimates_;
};

}  // namespace ldp

#endif  // LDPRANGE_CORE_HIERARCHICAL_H_
