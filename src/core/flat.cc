#include "core/flat.h"

#include <cmath>

#include "common/check.h"

namespace ldp {

FlatMechanism::FlatMechanism(uint64_t domain, double eps, OracleKind oracle)
    : RangeMechanism(domain, eps),
      oracle_kind_(oracle),
      oracle_(MakeOracle(oracle, domain, eps)) {}

uint64_t FlatMechanism::user_count() const { return oracle_->report_count(); }

std::string FlatMechanism::Name() const {
  std::string name = "Flat-";
  name += OracleKindName(oracle_kind_);
  return name;
}

double FlatMechanism::ReportBits() const { return oracle_->ReportBits(); }

void FlatMechanism::EncodeUser(uint64_t value, Rng& rng) {
  LDP_CHECK_LT(value, domain_);
  LDP_CHECK_MSG(!finalized_, "EncodeUser after Finalize");
  oracle_->SubmitValue(value, rng);
}

void FlatMechanism::EncodeUsers(std::span<const uint64_t> values, Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "EncodeUsers after Finalize");
  for (uint64_t value : values) {
    LDP_CHECK_LT(value, domain_);
  }
  oracle_->SubmitBatch(values, rng);
}

std::unique_ptr<RangeMechanism> FlatMechanism::CloneEmpty() const {
  return std::make_unique<FlatMechanism>(domain_, eps_, oracle_kind_);
}

void FlatMechanism::MergeFrom(const RangeMechanism& other) {
  const auto* o = dynamic_cast<const FlatMechanism*>(&other);
  LDP_CHECK_MSG(o != nullptr, "MergeFrom requires a FlatMechanism");
  LDP_CHECK_MSG(!finalized_ && !o->finalized_,
                "cannot merge finalized mechanisms");
  oracle_->MergeFrom(*o->oracle_);
}

void FlatMechanism::Finalize(Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "Finalize called twice");
  oracle_->Finalize(rng);
  frequencies_ = oracle_->EstimateFractions();
  prefix_.assign(domain_ + 1, 0.0);
  for (uint64_t i = 0; i < domain_; ++i) {
    prefix_[i + 1] = prefix_[i] + frequencies_[i];
  }
  finalized_ = true;
}

double FlatMechanism::RangeQuery(uint64_t a, uint64_t b) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, domain_);
  return prefix_[b + 1] - prefix_[a];
}

RangeEstimate FlatMechanism::RangeQueryWithUncertainty(uint64_t a,
                                                       uint64_t b) const {
  // Fact 1: Var = r * (per-item oracle variance); items are estimated
  // from independent randomness per position.
  double r = static_cast<double>(b - a + 1);
  return RangeEstimate{RangeQuery(a, b),
                       std::sqrt(r * oracle_->EstimatorVariance())};
}

std::vector<double> FlatMechanism::EstimateFrequencies() const {
  LDP_CHECK_MSG(finalized_, "EstimateFrequencies before Finalize");
  return frequencies_;
}

}  // namespace ldp
