// Quantile-query evaluation (paper Section 4.7 / Definition 4.7).
//
// A phi-quantile query returns the item j such that at most a phi-fraction
// of the data lies below j. Mechanisms answer it by binary search over
// noisy prefix queries (RangeMechanism::QuantileQuery); this header supplies
// the two error metrics the paper reports in Figure 9:
//   * value error    — |returned item - true quantile item| in domain units;
//   * quantile error — |true CDF at the returned item - phi|, i.e. how far
//     off the returned item is in *distributional* position.

#ifndef LDPRANGE_CORE_QUANTILE_H_
#define LDPRANGE_CORE_QUANTILE_H_

#include <cstdint>
#include <vector>

#include "core/range_mechanism.h"

namespace ldp {

/// Outcome of one quantile query against ground truth.
struct QuantileEvaluation {
  uint64_t true_item = 0;       ///< smallest j with true CDF(j) >= phi
  uint64_t estimated_item = 0;  ///< the mechanism's answer
  double value_error = 0.0;     ///< |estimated_item - true_item|
  double quantile_error = 0.0;  ///< |true CDF(estimated_item) - phi|
};

/// The true phi-quantile under `true_cdf` (true_cdf[j] = fraction <= j;
/// must be non-decreasing with last entry ~1).
uint64_t TrueQuantile(const std::vector<double>& true_cdf, double phi);

/// Runs the mechanism's quantile search and scores it against `true_cdf`.
QuantileEvaluation EvaluateQuantile(const RangeMechanism& mechanism,
                                    const std::vector<double>& true_cdf,
                                    double phi);

}  // namespace ldp

#endif  // LDPRANGE_CORE_QUANTILE_H_
