// Two-dimensional hierarchical range queries (paper Section 6).
//
// The 1-D hierarchical decomposition extends to [D]^2 by crossing the
// per-dimension B-adic trees: each user samples a LEVEL PAIR (l_x, l_y)
// uniformly from the (h+1)^2 - 1 pairs other than (0,0) (the (0,0) cell is
// the whole plane, whose fraction is exactly 1) and reports the one-hot
// indicator of their cell in the B^{l_x} x B^{l_y} grid through a frequency
// oracle. A rectangle query decomposes into the cross product of two B-adic
// decompositions — O(log_B^2 D) cells — giving the paper's log^{2d}
// variance scaling for d dimensions.

#ifndef LDPRANGE_CORE_MULTIDIM_H_
#define LDPRANGE_CORE_MULTIDIM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/badic.h"
#include "frequency/frequency_oracle.h"

namespace ldp {

/// Configuration for the 2-D hierarchical mechanism.
struct Hierarchical2DConfig {
  uint64_t fanout = 2;
  OracleKind oracle = OracleKind::kOueSimulated;
};

/// LDP mechanism answering axis-aligned rectangle queries over [D]^2.
class Hierarchical2D {
 public:
  /// `domain_per_dim` is the per-axis domain size D.
  Hierarchical2D(uint64_t domain_per_dim, double eps,
                 const Hierarchical2DConfig& config);

  Hierarchical2D(const Hierarchical2D&) = delete;
  Hierarchical2D& operator=(const Hierarchical2D&) = delete;

  uint64_t domain_per_dim() const { return domain_; }
  double epsilon() const { return eps_; }
  uint64_t user_count() const { return users_; }
  std::string Name() const;

  /// Client side: randomize the point (x, y), x, y in [0, D).
  void EncodeUser(uint64_t x, uint64_t y, Rng& rng);

  /// Server side: debias all grids. Call once.
  void Finalize(Rng& rng);

  /// Estimated fraction of users in the rectangle
  /// [ax, bx] x [ay, by] (inclusive).
  double RangeQuery(uint64_t ax, uint64_t bx, uint64_t ay,
                    uint64_t by) const;

 private:
  size_t PairIndex(uint32_t lx, uint32_t ly) const;

  uint64_t domain_;
  double eps_;
  Hierarchical2DConfig config_;
  TreeShape shape_;  // identical shape in both dimensions
  // One oracle per level pair (lx, ly) != (0,0); index PairIndex(lx, ly).
  // Cell (nx, ny) of pair (lx, ly) is flattened as nx * nodes(ly) + ny.
  std::vector<std::unique_ptr<FrequencyOracle>> grids_;
  std::vector<std::vector<double>> estimates_;
  uint64_t users_ = 0;
  bool finalized_ = false;
};

/// General d-dimensional hierarchical grids ("for d-dimensional data we
/// achieve variance depending on log^{2d} D", paper Section 6). Users
/// sample a level TUPLE (l_1, ..., l_d) uniformly from the (h+1)^d - 1
/// non-trivial tuples and report their cell in the product grid; an
/// axis-aligned box decomposes into the product of per-axis B-adic
/// decompositions. Memory grows as (D·B/(B-1))^d — per the paper, beyond
/// d = 2..3 coarser gridding is preferable; a guard rejects configurations
/// whose total cell count would exceed an explicit budget.
class HierarchicalGrid {
 public:
  /// One inclusive per-axis interval of an axis-aligned box query.
  struct AxisRange {
    uint64_t lo;
    uint64_t hi;
  };

  /// `max_total_cells` caps the summed oracle domains (memory guard).
  HierarchicalGrid(uint64_t domain_per_dim, uint32_t dimensions, double eps,
                   const Hierarchical2DConfig& config,
                   uint64_t max_total_cells = uint64_t{1} << 26);

  HierarchicalGrid(const HierarchicalGrid&) = delete;
  HierarchicalGrid& operator=(const HierarchicalGrid&) = delete;

  uint64_t domain_per_dim() const { return domain_; }
  uint32_t dimensions() const { return dims_; }
  double epsilon() const { return eps_; }
  uint64_t user_count() const { return users_; }
  /// Total cells across all level tuples (the memory footprint driver).
  uint64_t total_cells() const { return total_cells_; }

  /// Client side: randomize the point (point.size() == dimensions()).
  void EncodeUser(const std::vector<uint64_t>& point, Rng& rng);

  /// Server side; call once.
  void Finalize(Rng& rng);

  /// Estimated fraction of users inside the axis-aligned box
  /// (box.size() == dimensions(), inclusive bounds).
  double RangeQuery(const std::vector<AxisRange>& box) const;

 private:
  size_t TupleIndex(const std::vector<uint32_t>& levels) const;

  uint64_t domain_;
  uint32_t dims_;
  double eps_;
  Hierarchical2DConfig config_;
  TreeShape shape_;
  uint64_t tuple_count_;  // (h+1)^d, including the excluded all-zero tuple
  uint64_t total_cells_ = 0;
  std::vector<std::unique_ptr<FrequencyOracle>> grids_;
  std::vector<std::vector<double>> estimates_;
  uint64_t users_ = 0;
  bool finalized_ = false;
};

}  // namespace ldp

#endif  // LDPRANGE_CORE_MULTIDIM_H_
