// Multidimensional hierarchical range queries (paper Section 6).
//
// The 1-D hierarchical decomposition extends to [D]^d by crossing the
// per-dimension B-adic trees: each user samples a LEVEL TUPLE
// (l_1, ..., l_d) uniformly from the (h+1)^d - 1 tuples other than the
// all-root tuple (whose single cell is the whole space, known exactly) and
// reports the one-hot indicator of their cell in the product grid
// B^{l_1} x ... x B^{l_d} through a frequency oracle. An axis-aligned box
// query decomposes into the cross product of the per-axis B-adic
// decompositions — O(log_B^d D) cells — giving the paper's log^{2d} D
// variance scaling for d dimensions.
//
// Memory grows as (D·B/(B-1))^d — per the paper, beyond d = 2..3 coarser
// gridding is preferable; a guard rejects configurations whose total cell
// count would exceed an explicit budget (typed error via Create(), CHECK
// in the constructor).
//
// Two decode strategies (GridDecode in the config):
//  * kDeferred (default) — ingestion appends compact (tuple, cell[, seed])
//    records into arena-backed columns and Finalize runs one sharded pass:
//    records are partitioned by tuple (counting sort), then a ParallelFor
//    over tuples histograms each tuple's contiguous slice and fuses the
//    aggregate noise draw with the debiased estimate. No per-tuple oracle
//    objects exist at all — construction stops zeroing O(total_cells)
//    count vectors, ingest touches 8-16 bytes per report, and the decode
//    is one cache-blocked scan per tuple.
//  * kEager — one FrequencyOracle per tuple, reports folded into oracle
//    state at ingest, Finalize per oracle; the reference implementation.
// Both modes consume identical client-side Rng streams at ingest and fork
// one decode stream per tuple (in tuple order) at Finalize, so their
// estimates are BIT-IDENTICAL to each other and across thread counts.
// Deferral covers kOueSimulated, kSueSimulated, kGrr and kOlh; the
// per-user-exact kinds (kOue, kSue, kHrr) randomize each report at
// submission time and silently fall back to eager.

#ifndef LDPRANGE_CORE_MULTIDIM_H_
#define LDPRANGE_CORE_MULTIDIM_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "common/random.h"
#include "core/badic.h"
#include "core/range_mechanism.h"
#include "frequency/frequency_oracle.h"

namespace ldp {

/// When the grid turns ingested reports into estimates (see file comment).
enum class GridDecode {
  kDeferred,
  kEager,
};

/// Configuration for the multidimensional hierarchical mechanisms.
struct HierarchicalGridConfig {
  uint64_t fanout = 2;
  OracleKind oracle = OracleKind::kOueSimulated;
  GridDecode decode = GridDecode::kDeferred;
};

/// True when `kind` can be decoded at Finalize time from recorded
/// (tuple, cell[, seed]) reports — i.e. its client-side randomization and
/// aggregate state fit the deferred grid's record format.
bool GridOracleDeferrable(OracleKind kind);

/// Overflow-safe cell accounting for a prospective d-dimensional grid:
/// sums the product-grid sizes of every non-trivial level tuple into
/// `*total_cells`. Returns false (leaving `*total_cells` untouched) when
/// the total exceeds `budget` or any intermediate product overflows.
/// Shared by HierarchicalGrid and the wire-facing MultiDimServer so both
/// reject over-budget configurations identically.
bool GridCellsWithinBudget(const TreeShape& shape, uint32_t dims,
                           uint64_t budget, uint64_t* total_cells);

/// Walks the O(log_B^d D) grid cells covering the axis-aligned box — the
/// cross product of the per-axis B-adic decompositions. Invokes
/// visit(tuple, cell) with the level tuple flattened little-endian in
/// mixed radix (h+1)^d (dimension 0 least significant) and the cell
/// flattened the same way within that tuple's product grid.
template <typename CellVisitor>
void VisitGridBoxCells(const TreeShape& shape, uint32_t dims,
                       std::span<const AxisInterval> box,
                       CellVisitor&& visit) {
  LDP_CHECK_EQ(box.size(), static_cast<size_t>(dims));
  const uint64_t radix = uint64_t{shape.height()} + 1;
  std::vector<std::vector<TreeNode>> axis_nodes(dims);
  for (uint32_t dim = 0; dim < dims; ++dim) {
    LDP_CHECK_LE(box[dim].lo, box[dim].hi);
    LDP_CHECK_LT(box[dim].hi, shape.domain());
    axis_nodes[dim] = shape.Decompose(box[dim].lo, box[dim].hi);
  }
  // Walk the cross product of the per-axis decompositions.
  std::vector<size_t> pick(dims, 0);
  for (;;) {
    uint64_t tuple = 0;
    uint64_t cell = 0;
    uint64_t cell_stride = 1;
    uint64_t tuple_stride = 1;
    for (uint32_t dim = 0; dim < dims; ++dim) {
      const TreeNode& node = axis_nodes[dim][pick[dim]];
      tuple += static_cast<uint64_t>(node.level) * tuple_stride;
      tuple_stride *= radix;
      cell += node.index * cell_stride;
      cell_stride *= shape.NodesAtLevel(node.level);
    }
    visit(tuple, cell);
    // Advance the odometer.
    uint32_t dim = 0;
    for (; dim < dims; ++dim) {
      if (++pick[dim] < axis_nodes[dim].size()) break;
      pick[dim] = 0;
    }
    if (dim == dims) break;
  }
}

/// General d-dimensional hierarchical grids ("for d-dimensional data we
/// achieve variance depending on log^{2d} D", paper Section 6), on the
/// dimension-aware MechanismBase contract: points are spans of d
/// coordinates, queries axis-aligned boxes, with batched
/// (EncodePoints) and sharded (EncodePointsSharded via
/// CloneEmptyBase/MergeFromBase) ingestion.
class HierarchicalGrid : public MechanismBase {
 public:
  /// Default cap on the summed oracle domains (the memory guard).
  static constexpr uint64_t kDefaultCellBudget = uint64_t{1} << 26;

  /// `max_total_cells` caps the summed oracle domains; over-budget
  /// configurations CHECK-fail (use Create() for a typed error instead).
  HierarchicalGrid(uint64_t domain_per_dim, uint32_t dimensions, double eps,
                   const HierarchicalGridConfig& config,
                   uint64_t max_total_cells = kDefaultCellBudget);

  /// Validating factory: returns nullptr and fills `*error` (when non-null)
  /// instead of crashing when the configuration is invalid or its total
  /// cell count exceeds `max_total_cells` (overflow-safe accounting).
  static std::unique_ptr<HierarchicalGrid> Create(
      uint64_t domain_per_dim, uint32_t dimensions, double eps,
      const HierarchicalGridConfig& config,
      uint64_t max_total_cells = kDefaultCellBudget,
      std::string* error = nullptr);

  uint64_t domain_per_dim() const { return domain_; }
  /// Total cells across all level tuples (the memory footprint driver).
  uint64_t total_cells() const { return total_cells_; }

  uint32_t dimensions() const override { return dims_; }
  uint64_t user_count() const override { return users_; }
  /// The decode strategy in effect (config request, possibly downgraded
  /// to kEager for non-deferrable oracle kinds).
  GridDecode decode_mode() const {
    return deferred_ ? GridDecode::kDeferred : GridDecode::kEager;
  }
  /// Thread count for Finalize's per-tuple fan-out (0 = one per hardware
  /// core, the default). Estimates are bit-identical for every value.
  void set_finalize_threads(unsigned threads) { finalize_threads_ = threads; }
  /// System allocations ever made by the deferred record columns (flat
  /// across ingest/finalize sessions at steady state; test hook).
  uint64_t record_allocation_count() const {
    return rec_tuples_.allocation_count() + rec_cells_.allocation_count() +
           rec_seeds_.allocation_count();
  }
  std::string Name() const override;
  double ReportBits() const override;
  void EncodePoint(const uint64_t* coords, Rng& rng) override;
  void EncodePoints(std::span<const uint64_t> coords, Rng& rng) override;
  std::unique_ptr<MechanismBase> CloneEmptyBase() const override;
  void MergeFromBase(const MechanismBase& other) override;
  void Finalize(Rng& rng) override;
  double BoxQuery(std::span<const AxisInterval> box) const override;
  RangeEstimate BoxQueryWithUncertainty(
      std::span<const AxisInterval> box) const override;

 private:
  void FinalizeEager(Rng& rng);
  void FinalizeDeferred(Rng& rng);

  double EstimateAt(uint64_t tuple, uint64_t cell) const {
    return deferred_ ? flat_estimates_[tuple_offset_[tuple] + cell]
                     : estimates_[tuple][cell];
  }

  uint32_t dims_;
  HierarchicalGridConfig config_;
  TreeShape shape_;  // identical shape in every dimension
  uint64_t max_total_cells_;
  uint64_t tuple_count_;  // (h+1)^d, including the excluded all-zero tuple
  uint64_t total_cells_ = 0;
  bool deferred_ = false;  // resolved decode mode (see GridOracleDeferrable)
  unsigned finalize_threads_ = 0;
  uint64_t olh_g_ = 0;  // shared OLH hash range (kOlh only)
  // Product-grid size per tuple (tuple_cells_[0] = 1, the all-root cell).
  std::vector<uint64_t> tuple_cells_;
  // One oracle per level tuple != all-zero; index = little-endian mixed
  // radix over (h+1), dimension 0 least significant. Cells flatten the
  // same way (dimension 0 fastest). Empty in deferred mode — the whole
  // point: no O(total_cells) oracle state exists until Finalize.
  std::vector<std::unique_ptr<FrequencyOracle>> grids_;
  // Deferred-mode record columns, structure-of-arrays on arenas: the
  // sampled tuple, the (client-randomized where applicable) cell, and for
  // kOlh the public hash seed. Identical append schedules keep their chunk
  // boundaries paired.
  ArenaColumn<uint32_t> rec_tuples_;
  ArenaColumn<uint32_t> rec_cells_;
  ArenaColumn<uint64_t> rec_seeds_;
  // Reports per tuple (deferred mode; an eager oracle tracks its own).
  std::vector<uint64_t> tuple_reports_;
  // Post-finalize per-tuple estimator variance (deferred mode's stand-in
  // for FrequencyOracle::EstimatorVariance; +inf for empty tuples).
  std::vector<double> tuple_variance_;
  // Post-finalize estimates. Eager mode keeps the per-tuple vectors the
  // oracles hand back. Deferred mode writes ONE flat buffer (tuple t's
  // cells at [tuple_offset_[t], tuple_offset_[t+1])): a single allocation
  // whose doubles are written exactly once — no per-tuple zero-fill pass
  // over the ~total_cells doubles that the decode immediately overwrites,
  // which is a measurable slice of Finalize at grid scale.
  std::vector<std::vector<double>> estimates_;
  std::unique_ptr<double[]> flat_estimates_;
  std::vector<uint64_t> tuple_offset_;
  uint64_t users_ = 0;
  bool finalized_ = false;
};

/// Two-dimensional convenience wrapper (paper Section 6's d = 2 case):
/// exactly HierarchicalGrid with d = 2 plus (x, y) / rectangle shorthands.
class Hierarchical2D final : public HierarchicalGrid {
 public:
  Hierarchical2D(uint64_t domain_per_dim, double eps,
                 const HierarchicalGridConfig& config)
      : HierarchicalGrid(domain_per_dim, 2, eps, config) {}

  /// Client side: randomize the point (x, y), x, y in [0, D).
  void EncodeUser(uint64_t x, uint64_t y, Rng& rng) {
    const uint64_t point[2] = {x, y};
    EncodePoint(point, rng);
  }

  /// Estimated fraction of users in the rectangle
  /// [ax, bx] x [ay, by] (inclusive).
  double RangeQuery(uint64_t ax, uint64_t bx, uint64_t ay,
                    uint64_t by) const {
    const AxisInterval box[2] = {{ax, bx}, {ay, by}};
    return BoxQuery(box);
  }
};

}  // namespace ldp

#endif  // LDPRANGE_CORE_MULTIDIM_H_
