#include "core/ahead.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bit_util.h"
#include "common/check.h"
#include "core/consistency.h"

namespace ldp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

uint32_t ResolveAheadDepthCap(const TreeShape& shape, uint32_t max_depth) {
  if (max_depth == 0 || max_depth > shape.height()) return shape.height();
  return max_depth;
}

std::string AheadMethodName(const AheadConfig& config) {
  std::string name = "AHEAD";
  name += std::to_string(config.fanout);
  if (config.oracle != OracleKind::kOueSimulated) {
    name += "-";
    name += OracleKindName(config.oracle);
  }
  return name;
}

// --- AdaptiveTree ---------------------------------------------------------

AdaptiveTree AdaptiveTree::Grow(
    const TreeShape& shape, uint32_t max_depth,
    const std::function<bool(const TreeNode&)>& should_split) {
  AdaptiveTree tree(shape);
  max_depth = ResolveAheadDepthCap(shape, max_depth);
  AdaptiveNode root;
  root.node = TreeNode{0, 0};
  root.block_start = 0;
  root.block_end = shape.padded_domain();
  tree.nodes_.push_back(root);
  // Scanning the growing vector in order IS the BFS: children are appended
  // strictly after their parent, level by level, left to right.
  for (uint32_t i = 0; i < tree.nodes_.size(); ++i) {
    // Copy, not reference: push_back below may reallocate nodes_.
    AdaptiveNode n = tree.nodes_[i];
    bool split = n.node.level == 0 ||
                 (n.node.level < max_depth && n.block_length() > 1 &&
                  should_split(n.node));
    if (!split) continue;
    uint64_t child_len = n.block_length() / shape.fanout();
    tree.nodes_[i].first_child = static_cast<uint32_t>(tree.nodes_.size());
    tree.nodes_[i].num_children = static_cast<uint32_t>(shape.fanout());
    for (uint64_t c = 0; c < shape.fanout(); ++c) {
      AdaptiveNode child;
      child.node =
          TreeNode{n.node.level + 1, n.node.index * shape.fanout() + c};
      child.block_start = n.block_start + c * child_len;
      child.block_end = child.block_start + child_len;
      child.parent = static_cast<int64_t>(i);
      tree.nodes_.push_back(child);
    }
  }
  tree.BuildFrontiers();
  return tree;
}

std::optional<AdaptiveTree> AdaptiveTree::TryFromSplits(
    const TreeShape& shape, std::span<const TreeNode> splits) {
  if (splits.empty()) return std::nullopt;
  if (splits[0] != TreeNode{0, 0}) return std::nullopt;
  for (size_t i = 0; i < splits.size(); ++i) {
    const TreeNode& s = splits[i];
    // A split node must have children inside the tree.
    if (s.level >= shape.height()) return std::nullopt;
    if (s.index >= shape.NodesAtLevel(s.level)) return std::nullopt;
    // Canonical BFS order: strictly sorted by (level, index).
    if (i > 0) {
      const TreeNode& prev = splits[i - 1];
      if (s.level < prev.level ||
          (s.level == prev.level && s.index <= prev.index)) {
        return std::nullopt;
      }
    }
  }
  auto is_split = [&](const TreeNode& n) {
    return std::binary_search(
        splits.begin(), splits.end(), n, [](const TreeNode& a, const TreeNode& b) {
          return a.level < b.level ||
                 (a.level == b.level && a.index < b.index);
        });
  };
  // Every non-root split must hang off a split parent, or it would be
  // unreachable (a forged wire message).
  for (const TreeNode& s : splits) {
    if (s.level == 0) continue;
    if (!is_split(TreeNode{s.level - 1, s.index / shape.fanout()})) {
      return std::nullopt;
    }
  }
  AdaptiveTree tree = Grow(shape, shape.height(), is_split);
  size_t internal = 0;
  for (const AdaptiveNode& n : tree.nodes_) {
    if (!n.is_leaf()) ++internal;
  }
  if (internal != splits.size()) return std::nullopt;
  return tree;
}

void AdaptiveTree::BuildFrontiers() {
  uint32_t num_levels = 1;
  for (const AdaptiveNode& n : nodes_) {
    if (!n.is_leaf()) num_levels = std::max(num_levels, n.node.level + 1);
  }
  frontiers_.clear();
  starts_.clear();
  std::vector<uint32_t> frontier;
  for (uint32_t c = 0; c < nodes_[0].num_children; ++c) {
    frontier.push_back(nodes_[0].first_child + c);
  }
  for (uint32_t l = 1; l <= num_levels; ++l) {
    std::vector<uint64_t> starts;
    starts.reserve(frontier.size());
    for (uint32_t idx : frontier) starts.push_back(nodes_[idx].block_start);
    frontiers_.push_back(frontier);
    starts_.push_back(std::move(starts));
    if (l == num_levels) break;
    // Frontier l+1: split nodes sitting exactly at depth l hand over to
    // their children; leaves are carried down unchanged. Left-to-right
    // order is preserved because children replace their parent in place.
    std::vector<uint32_t> next;
    next.reserve(frontier.size());
    for (uint32_t idx : frontier) {
      const AdaptiveNode& n = nodes_[idx];
      if (!n.is_leaf() && n.node.level == l) {
        for (uint32_t c = 0; c < n.num_children; ++c) {
          next.push_back(n.first_child + c);
        }
      } else {
        next.push_back(idx);
      }
    }
    frontier = std::move(next);
  }
}

std::vector<TreeNode> AdaptiveTree::SplitNodes() const {
  std::vector<TreeNode> splits;
  for (const AdaptiveNode& n : nodes_) {
    if (!n.is_leaf()) splits.push_back(n.node);
  }
  return splits;
}

uint64_t AdaptiveTree::FrontierSize(uint32_t level) const {
  LDP_CHECK_GE(level, 1u);
  LDP_CHECK_LE(level, num_levels());
  return frontiers_[level - 1].size();
}

uint32_t AdaptiveTree::FrontierNode(uint32_t level, uint64_t j) const {
  LDP_CHECK_GE(level, 1u);
  LDP_CHECK_LE(level, num_levels());
  LDP_CHECK_LT(j, frontiers_[level - 1].size());
  return frontiers_[level - 1][j];
}

uint64_t AdaptiveTree::FrontierIndex(uint32_t level, uint64_t z) const {
  LDP_CHECK_GE(level, 1u);
  LDP_CHECK_LE(level, num_levels());
  LDP_CHECK_LT(z, shape_.padded_domain());
  const std::vector<uint64_t>& starts = starts_[level - 1];
  // Last element whose block starts at or before z; the frontier
  // partitions the padded domain, so this element contains z.
  auto it = std::upper_bound(starts.begin(), starts.end(), z);
  return static_cast<uint64_t>(it - starts.begin()) - 1;
}

std::pair<uint32_t, uint32_t> AdaptiveTree::NodeLevelRange(uint32_t i) const {
  LDP_CHECK_LT(i, nodes_.size());
  LDP_CHECK_GE(i, 1u);  // the root reports nowhere
  const AdaptiveNode& n = nodes_[i];
  if (n.is_leaf()) return {n.node.level, num_levels()};
  return {n.node.level, n.node.level};
}

std::vector<int64_t> AdaptiveTree::ParentIndices() const {
  std::vector<int64_t> parents;
  parents.reserve(nodes_.size());
  for (const AdaptiveNode& n : nodes_) parents.push_back(n.parent);
  return parents;
}

// --- Shared estimate plumbing ---------------------------------------------

void CombineFrontierEstimates(
    const AdaptiveTree& tree,
    std::span<const std::vector<double>> level_estimates,
    std::span<const double> level_variances,
    std::vector<double>* node_values, std::vector<double>* node_variances) {
  LDP_CHECK_EQ(level_estimates.size(), size_t{tree.num_levels()});
  LDP_CHECK_EQ(level_variances.size(), size_t{tree.num_levels()});
  const std::vector<AdaptiveNode>& nodes = tree.nodes();
  node_values->assign(nodes.size(), 0.0);
  node_variances->assign(nodes.size(), kInf);
  (*node_values)[0] = 1.0;  // the root mass is known exactly
  (*node_variances)[0] = 0.0;
  for (uint32_t i = 1; i < nodes.size(); ++i) {
    auto [lo, hi] = tree.NodeLevelRange(i);
    double weight_sum = 0.0;
    double weighted = 0.0;
    for (uint32_t l = lo; l <= hi; ++l) {
      double var = level_variances[l - 1];
      if (!std::isfinite(var) || var <= 0.0) continue;
      uint64_t j = tree.FrontierIndex(l, nodes[i].block_start);
      double w = 1.0 / var;
      weight_sum += w;
      weighted += w * level_estimates[l - 1][j];
    }
    if (weight_sum > 0.0) {
      (*node_values)[i] = weighted / weight_sum;
      (*node_variances)[i] = 1.0 / weight_sum;
    }
  }
}

namespace {

void AccumulateRange(const AdaptiveTree& tree,
                     std::span<const double> node_values,
                     std::span<const double> node_variances, uint32_t i,
                     uint64_t a, uint64_t b, double& value,
                     double& variance) {
  const AdaptiveNode& n = tree.nodes()[i];
  uint64_t start = n.block_start;
  uint64_t end = n.block_end - 1;  // inclusive
  if (b < start || a > end) return;
  if (a <= start && end <= b) {
    value += node_values[i];
    if (std::isfinite(node_variances[i])) variance += node_variances[i];
    return;
  }
  if (n.is_leaf()) {
    // Partial overlap below the leaf's resolution: uniform-within-leaf.
    uint64_t lo = std::max(a, start);
    uint64_t hi = std::min(b, end);
    double frac = static_cast<double>(hi - lo + 1) /
                  static_cast<double>(n.block_length());
    value += node_values[i] * frac;
    if (std::isfinite(node_variances[i])) {
      variance += node_variances[i] * frac * frac;
    }
    return;
  }
  for (uint32_t c = 0; c < n.num_children; ++c) {
    AccumulateRange(tree, node_values, node_variances, n.first_child + c, a,
                    b, value, variance);
  }
}

}  // namespace

RangeEstimate AdaptiveRangeEstimate(const AdaptiveTree& tree,
                                    std::span<const double> node_values,
                                    std::span<const double> node_variances,
                                    uint64_t a, uint64_t b) {
  LDP_CHECK_EQ(node_values.size(), tree.nodes().size());
  LDP_CHECK_EQ(node_variances.size(), tree.nodes().size());
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, tree.shape().padded_domain());
  double value = 0.0;
  double variance = 0.0;
  AccumulateRange(tree, node_values, node_variances, 0, a, b, value,
                  variance);
  return RangeEstimate{value, std::sqrt(variance)};
}

std::vector<double> AdaptiveLeafFrequencies(
    const AdaptiveTree& tree, std::span<const double> node_values,
    uint64_t domain) {
  LDP_CHECK_EQ(node_values.size(), tree.nodes().size());
  std::vector<double> freqs(domain, 0.0);
  for (uint32_t i = 0; i < tree.nodes().size(); ++i) {
    const AdaptiveNode& n = tree.nodes()[i];
    if (!n.is_leaf()) continue;
    double per_cell = node_values[i] / static_cast<double>(n.block_length());
    uint64_t end = std::min(n.block_end, domain);
    for (uint64_t z = n.block_start; z < end; ++z) {
      freqs[z] = per_cell;
    }
  }
  return freqs;
}

// --- AheadMechanism -------------------------------------------------------

AheadMechanism::AheadMechanism(uint64_t domain, double eps,
                               const AheadConfig& config)
    : RangeMechanism(domain, eps),
      config_(config),
      shape_(domain, config.fanout),
      max_depth_(ResolveAheadDepthCap(shape_, config.max_depth)) {
  LDP_CHECK_GE(config.fanout, 2u);
  LDP_CHECK_MSG(
      config.phase1_fraction > 0.0 && config.phase1_fraction < 1.0,
      "phase1_fraction must be in (0, 1)");
  HierarchicalConfig phase1_config;
  phase1_config.fanout = config_.fanout;
  phase1_config.oracle = config_.oracle;
  phase1_config.consistency = true;
  phase1_tree_ =
      std::make_unique<HierarchicalMechanism>(domain, eps, phase1_config);
  phase2_counts_.assign(domain, 0);
}

std::string AheadMechanism::Name() const { return AheadMethodName(config_); }

double AheadMechanism::ReportBits() const {
  // A phase-1 user ships one HH-style level-sampled report; a phase-2
  // user ships a sampled level id plus one frontier-oracle report. Before
  // Finalize the tree (and thus the frontier sizes) is unknown, so the
  // phase-2 term falls back to the phase-1 size — an upper bound, since
  // every frontier is at most the complete level it prunes.
  double phase1_bits = phase1_tree_->ReportBits();
  double phase2_bits = phase1_bits;
  if (finalized_) {
    const uint32_t num_levels = tree_->num_levels();
    double oracle_bits = 0.0;
    for (uint32_t l = 1; l <= num_levels; ++l) {
      oracle_bits +=
          MakeOracle(config_.oracle, tree_->FrontierSize(l), eps_)
              ->ReportBits();
    }
    phase2_bits = static_cast<double>(Log2Ceil(num_levels)) +
                  oracle_bits / num_levels;
  }
  return config_.phase1_fraction * phase1_bits +
         (1.0 - config_.phase1_fraction) * phase2_bits;
}

void AheadMechanism::EncodeUser(uint64_t value, Rng& rng) {
  LDP_CHECK_LT(value, domain_);
  LDP_CHECK_MSG(!finalized_, "EncodeUser after Finalize");
  // The phase coin is the user's own: drawn from their private stream, so
  // the partition is oblivious to the data and to the shard layout.
  if (rng.Bernoulli(config_.phase1_fraction)) {
    phase1_tree_->EncodeUser(value, rng);
    ++phase1_users_;
  } else {
    ++phase2_counts_[value];
    ++phase2_users_;
  }
  ++users_;
}

void AheadMechanism::EncodeUsers(std::span<const uint64_t> values, Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "EncodeUsers after Finalize");
  // Same draw order as the EncodeUser loop (coin, then submit), with the
  // finalized check hoisted out of the hot loop.
  for (uint64_t value : values) {
    LDP_CHECK_LT(value, domain_);
    if (rng.Bernoulli(config_.phase1_fraction)) {
      phase1_tree_->EncodeUser(value, rng);
      ++phase1_users_;
    } else {
      ++phase2_counts_[value];
      ++phase2_users_;
    }
  }
  users_ += values.size();
}

std::unique_ptr<RangeMechanism> AheadMechanism::CloneEmpty() const {
  return std::make_unique<AheadMechanism>(domain_, eps_, config_);
}

void AheadMechanism::MergeFrom(const RangeMechanism& other) {
  const auto* o = dynamic_cast<const AheadMechanism*>(&other);
  LDP_CHECK_MSG(o != nullptr, "MergeFrom requires an AheadMechanism");
  LDP_CHECK_MSG(!finalized_ && !o->finalized_,
                "cannot merge finalized mechanisms");
  LDP_CHECK(o->domain_ == domain_);
  LDP_CHECK(o->config_.fanout == config_.fanout);
  LDP_CHECK(o->config_.oracle == config_.oracle);
  LDP_CHECK(o->config_.phase1_fraction == config_.phase1_fraction);
  phase1_tree_->MergeFrom(*o->phase1_tree_);
  for (uint64_t z = 0; z < domain_; ++z) {
    phase2_counts_[z] += o->phase2_counts_[z];
  }
  users_ += o->users_;
  phase1_users_ += o->phase1_users_;
  phase2_users_ += o->phase2_users_;
}

void AheadMechanism::Finalize(Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "Finalize called twice");

  // Phase 1 decode: finalize the embedded HH_B, giving every candidate
  // node an own-granularity mass estimate (constant variance per node —
  // the property the split decisions depend on).
  phase1_tree_->Finalize(rng);

  // Adaptive decomposition: split a node only when its estimated mass
  // clears the noise floor of the phase-2 estimates its children would
  // receive — AHEAD's criterion. With level sampling each frontier gets
  // roughly n2 / depth-cap reporters, so a child estimate carries
  // Var_F(eps, n2/max_depth) of noise; a node whose whole mass is within
  // ~2 of those sigmas (at the default scale) cannot be resolved by
  // splitting, only made noisier. The threshold is deliberately
  // independent of the node's size or depth: an under-split of a heavy
  // node costs a large uniform-within-leaf bias, while an over-split of
  // an empty one costs a little variance, so ties break toward
  // splitting.
  double phase2_level_reports = std::max(
      1.0, static_cast<double>(phase2_users_) / max_depth_);
  double theta = config_.threshold_scale * 2.0 *
                 std::sqrt(OracleVariance(eps_, phase2_level_reports));
  bool no_signal = phase1_users_ == 0;
  auto should_split = [&](const TreeNode& n) {
    if (config_.threshold_scale <= 0.0 || no_signal) return true;
    return phase1_tree_->NodeEstimate(n) > theta;
  };
  tree_ = AdaptiveTree::Grow(shape_, max_depth_, should_split);

  // Phase 2: simulate the level-sampled reports over the frontiers (the
  // kOueSimulated idiom — the aggregate noise is drawn here rather than
  // per user, which is what keeps ingestion O(1)/user and shard-order
  // independent).
  const uint32_t num_levels = tree_->num_levels();
  std::vector<std::unique_ptr<FrequencyOracle>> level_oracles;
  level_oracles.reserve(num_levels);
  for (uint32_t l = 1; l <= num_levels; ++l) {
    level_oracles.push_back(
        MakeOracle(config_.oracle, tree_->FrontierSize(l), eps_));
  }
  std::vector<uint64_t> cell_frontier(num_levels);
  for (uint64_t z = 0; z < domain_; ++z) {
    uint64_t count = phase2_counts_[z];
    if (count == 0) continue;
    for (uint32_t l = 1; l <= num_levels; ++l) {
      cell_frontier[l - 1] = tree_->FrontierIndex(l, z);
    }
    for (uint64_t u = 0; u < count; ++u) {
      uint32_t pick = static_cast<uint32_t>(rng.UniformInt(num_levels));
      level_oracles[pick]->SubmitValue(cell_frontier[pick], rng);
    }
  }
  std::vector<std::vector<double>> level_estimates(num_levels);
  std::vector<double> level_vars(num_levels, kInf);
  for (uint32_t l = 0; l < num_levels; ++l) {
    level_oracles[l]->Finalize(rng);
    if (level_oracles[l]->report_count() > 0) {
      level_estimates[l] = level_oracles[l]->EstimateFractions();
      level_vars[l] = level_oracles[l]->EstimatorVariance();
    } else {
      level_estimates[l].assign(tree_->FrontierSize(l + 1), 0.0);
    }
  }

  CombineFrontierEstimates(*tree_, level_estimates, level_vars,
                           &node_values_, &node_variances_);

  std::vector<int64_t> parents = tree_->ParentIndices();
  if (config_.consistency) {
    EnforceAdaptiveConsistency(parents, node_values_, node_variances_,
                               /*root_pin=*/1.0);
  }
  if (config_.nonnegativity) {
    NonNegativeRescaleTopDown(parents, node_values_);
  }
  finalized_ = true;
}

const AdaptiveTree& AheadMechanism::tree() const {
  LDP_CHECK_MSG(finalized_, "tree() before Finalize");
  return *tree_;
}

double AheadMechanism::NodeEstimate(uint32_t i) const {
  LDP_CHECK_MSG(finalized_, "NodeEstimate before Finalize");
  LDP_CHECK_LT(i, node_values_.size());
  return node_values_[i];
}

double AheadMechanism::NodeVariance(uint32_t i) const {
  LDP_CHECK_MSG(finalized_, "NodeVariance before Finalize");
  LDP_CHECK_LT(i, node_variances_.size());
  return node_variances_[i];
}

double AheadMechanism::RangeQuery(uint64_t a, uint64_t b) const {
  return RangeQueryWithUncertainty(a, b).value;
}

RangeEstimate AheadMechanism::RangeQueryWithUncertainty(uint64_t a,
                                                        uint64_t b) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_LT(b, domain_);
  return AdaptiveRangeEstimate(*tree_, node_values_, node_variances_, a, b);
}

std::vector<double> AheadMechanism::EstimateFrequencies() const {
  LDP_CHECK_MSG(finalized_, "EstimateFrequencies before Finalize");
  return AdaptiveLeafFrequencies(*tree_, node_values_, domain_);
}

}  // namespace ldp
