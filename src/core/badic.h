// B-adic intervals and complete B-ary tree indexing (paper Facts 2 & 3).
//
// A B-adic interval has length B^j and starts at an integer multiple of its
// length. Organizing all B-adic intervals over [0, B^h) as a complete B-ary
// tree, any range [a, b] decomposes into at most (B-1)(2 log_B r + 1)
// disjoint B-adic pieces (Fact 3) — the reason hierarchical methods answer
// long ranges with only logarithmically many noisy counts.

#ifndef LDPRANGE_CORE_BADIC_H_
#define LDPRANGE_CORE_BADIC_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace ldp {

/// A node of the B-adic tree: `level` 0 is the root (the whole domain),
/// `level` h is the leaf level; `index` counts nodes left-to-right within
/// the level.
struct TreeNode {
  uint32_t level;
  uint64_t index;

  friend bool operator==(const TreeNode&, const TreeNode&) = default;
};

/// Shape of a complete B-ary tree over a (padded) domain.
class TreeShape {
 public:
  /// Builds the shape for `domain` items with fanout `fanout`; the tree's
  /// leaf level is padded up to the next power of `fanout`.
  TreeShape(uint64_t domain, uint64_t fanout);

  uint64_t domain() const { return domain_; }
  uint64_t fanout() const { return fanout_; }
  /// Number of levels below the root; leaves live at level height().
  uint32_t height() const { return height_; }
  /// Padded leaf count fanout^height.
  uint64_t padded_domain() const { return padded_; }

  /// Number of nodes at `level`: fanout^level.
  uint64_t NodesAtLevel(uint32_t level) const;

  /// Width (number of leaves) of any node at `level`.
  uint64_t BlockLength(uint32_t level) const;

  /// First leaf covered by node (level, index).
  uint64_t BlockStart(const TreeNode& node) const;

  /// Last leaf covered by node (level, index), inclusive.
  uint64_t BlockEnd(const TreeNode& node) const;

  /// Index within `level` of the node whose block contains leaf `z`.
  uint64_t NodeContaining(uint32_t level, uint64_t z) const;

  /// Decomposes the inclusive range [a, b] (0 <= a <= b < padded_domain)
  /// into the minimal set of disjoint B-adic tree nodes, ordered
  /// left-to-right. Satisfies the Fact 3 size bound.
  std::vector<TreeNode> Decompose(uint64_t a, uint64_t b) const;

  /// Total number of tree nodes across levels 0..height.
  uint64_t TotalNodes() const;

 private:
  void DecomposeRec(uint32_t level, uint64_t index, uint64_t lo, uint64_t hi,
                    uint64_t a, uint64_t b, std::vector<TreeNode>& out) const;

  uint64_t domain_;
  uint64_t fanout_;
  uint32_t height_;
  uint64_t padded_;
};

}  // namespace ldp

#endif  // LDPRANGE_CORE_BADIC_H_
