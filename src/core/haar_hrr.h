// HaarHRR: range queries via perturbed Discrete Haar Transform coefficients
// (paper Section 4.6).
//
// Protocol: the domain is padded to D = 2^h. Each user samples one Haar
// level l in [1, h] uniformly (same analysis as HH: uniform is optimal) and
// reports their level-l coefficient vector — a signed one-hot vector with
// entry +/-1 at the block containing their value — through Hadamard
// Randomized Response. HRR is the paper's chosen primitive because it
// handles the negative weight natively and the report is a single bit plus
// indices. The topmost "average" coefficient c0 needs no reports: it always
// equals 1/sqrt(D) for a fraction vector.
//
// No consistency step exists or is needed: Haar coefficients are
// non-redundant, so any coefficient estimate vector corresponds to exactly
// one (signed) frequency vector. Worst-case range variance is
// (1/2) log2(D)^2 V_F (Eq. 3), independent of the range length.

#ifndef LDPRANGE_CORE_HAAR_HRR_H_
#define LDPRANGE_CORE_HAAR_HRR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/haar.h"
#include "core/range_mechanism.h"
#include "frequency/hrr.h"

namespace ldp {

/// The HaarHRR range mechanism.
class HaarHrrMechanism final : public RangeMechanism {
 public:
  HaarHrrMechanism(uint64_t domain, double eps);

  /// Padded power-of-two domain the Haar tree is built over.
  uint64_t padded_domain() const { return padded_; }
  uint32_t height() const { return height_; }

  uint64_t user_count() const override { return users_; }
  std::string Name() const override { return "HaarHRR"; }
  double ReportBits() const override;
  void EncodeUser(uint64_t value, Rng& rng) override;
  void EncodeUsers(std::span<const uint64_t> values, Rng& rng) override;
  std::unique_ptr<RangeMechanism> CloneEmpty() const override;
  void MergeFrom(const RangeMechanism& other) override;
  void Finalize(Rng& rng) override;
  double RangeQuery(uint64_t a, uint64_t b) const override;
  RangeEstimate RangeQueryWithUncertainty(uint64_t a,
                                          uint64_t b) const override;
  std::vector<double> EstimateFrequencies() const override;

  /// Post-Finalize estimated orthonormal coefficients (tests/diagnostics).
  const HaarCoefficients& coefficients() const;

 private:
  uint64_t padded_;
  uint32_t height_;
  // level_oracles_[l-1] perturbs the level-l coefficient vector
  // (domain D / 2^l entries, signed).
  std::vector<std::unique_ptr<HrrOracle>> level_oracles_;
  uint64_t users_ = 0;
  bool finalized_ = false;
  HaarCoefficients coefficients_;
};

}  // namespace ldp

#endif  // LDPRANGE_CORE_HAAR_HRR_H_
