#include "core/consistency.h"

#include <cmath>

#include "common/check.h"

namespace ldp {

namespace {

void CheckShape(const std::vector<std::vector<double>>& levels,
                uint64_t fanout) {
  LDP_CHECK(!levels.empty());
  LDP_CHECK_EQ(levels[0].size(), size_t{1});
  for (size_t l = 1; l < levels.size(); ++l) {
    LDP_CHECK_EQ(levels[l].size(), levels[l - 1].size() * fanout);
  }
}

}  // namespace

void WeightedAverageBottomUp(std::vector<std::vector<double>>& levels,
                             uint64_t fanout) {
  CheckShape(levels, fanout);
  const size_t height = levels.size() - 1;
  const double b = static_cast<double>(fanout);
  // Leaves (height i = 1) keep their raw estimates; walk upward. A node at
  // tree depth l has height i = height - l + 1, so B^{i-1} = B^{height-l}.
  for (size_t l = height; l-- > 0;) {
    double bi_minus1 = std::pow(b, static_cast<double>(height - l));
    double bi = bi_minus1 * b;
    double self_w = (bi - bi_minus1) / (bi - 1.0);
    double child_w = (bi_minus1 - 1.0) / (bi - 1.0);
    for (size_t k = 0; k < levels[l].size(); ++k) {
      double child_sum = 0.0;
      for (uint64_t c = 0; c < fanout; ++c) {
        child_sum += levels[l + 1][k * fanout + c];
      }
      levels[l][k] = self_w * levels[l][k] + child_w * child_sum;
    }
  }
}

void MeanConsistencyTopDown(std::vector<std::vector<double>>& levels,
                            uint64_t fanout,
                            std::optional<double> root_pin) {
  CheckShape(levels, fanout);
  const double b = static_cast<double>(fanout);
  // In the local model the root fraction is exactly 1 (every user's
  // root-to-leaf path includes the root), so callers pin it; the
  // centralized baselines keep the stage-1 estimate instead.
  if (root_pin.has_value()) {
    levels[0][0] = *root_pin;
  }
  for (size_t l = 0; l + 1 < levels.size(); ++l) {
    for (size_t k = 0; k < levels[l].size(); ++k) {
      double child_sum = 0.0;
      for (uint64_t c = 0; c < fanout; ++c) {
        child_sum += levels[l + 1][k * fanout + c];
      }
      double adjust = (levels[l][k] - child_sum) / b;
      for (uint64_t c = 0; c < fanout; ++c) {
        levels[l + 1][k * fanout + c] += adjust;
      }
    }
  }
}

void EnforceHierarchicalConsistency(std::vector<std::vector<double>>& levels,
                                    uint64_t fanout,
                                    std::optional<double> root_pin) {
  WeightedAverageBottomUp(levels, fanout);
  MeanConsistencyTopDown(levels, fanout, root_pin);
}

}  // namespace ldp
