#include "core/consistency.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace ldp {

namespace {

void CheckShape(const std::vector<std::vector<double>>& levels,
                uint64_t fanout) {
  LDP_CHECK(!levels.empty());
  LDP_CHECK_EQ(levels[0].size(), size_t{1});
  for (size_t l = 1; l < levels.size(); ++l) {
    LDP_CHECK_EQ(levels[l].size(), levels[l - 1].size() * fanout);
  }
}

}  // namespace

void WeightedAverageBottomUp(std::vector<std::vector<double>>& levels,
                             uint64_t fanout) {
  CheckShape(levels, fanout);
  const size_t height = levels.size() - 1;
  const double b = static_cast<double>(fanout);
  // Leaves (height i = 1) keep their raw estimates; walk upward. A node at
  // tree depth l has height i = height - l + 1, so B^{i-1} = B^{height-l}.
  for (size_t l = height; l-- > 0;) {
    double bi_minus1 = std::pow(b, static_cast<double>(height - l));
    double bi = bi_minus1 * b;
    double self_w = (bi - bi_minus1) / (bi - 1.0);
    double child_w = (bi_minus1 - 1.0) / (bi - 1.0);
    for (size_t k = 0; k < levels[l].size(); ++k) {
      double child_sum = 0.0;
      for (uint64_t c = 0; c < fanout; ++c) {
        child_sum += levels[l + 1][k * fanout + c];
      }
      levels[l][k] = self_w * levels[l][k] + child_w * child_sum;
    }
  }
}

void MeanConsistencyTopDown(std::vector<std::vector<double>>& levels,
                            uint64_t fanout,
                            std::optional<double> root_pin) {
  CheckShape(levels, fanout);
  const double b = static_cast<double>(fanout);
  // In the local model the root fraction is exactly 1 (every user's
  // root-to-leaf path includes the root), so callers pin it; the
  // centralized baselines keep the stage-1 estimate instead.
  if (root_pin.has_value()) {
    levels[0][0] = *root_pin;
  }
  for (size_t l = 0; l + 1 < levels.size(); ++l) {
    for (size_t k = 0; k < levels[l].size(); ++k) {
      double child_sum = 0.0;
      for (uint64_t c = 0; c < fanout; ++c) {
        child_sum += levels[l + 1][k * fanout + c];
      }
      double adjust = (levels[l][k] - child_sum) / b;
      for (uint64_t c = 0; c < fanout; ++c) {
        levels[l + 1][k * fanout + c] += adjust;
      }
    }
  }
}

void EnforceHierarchicalConsistency(std::vector<std::vector<double>>& levels,
                                    uint64_t fanout,
                                    std::optional<double> root_pin) {
  WeightedAverageBottomUp(levels, fanout);
  MeanConsistencyTopDown(levels, fanout, root_pin);
}

namespace {

// Derives per-node child lists from the parent array, validating the
// topological-order contract as it goes.
std::vector<std::vector<uint32_t>> ChildLists(
    std::span<const int64_t> parents) {
  LDP_CHECK(!parents.empty());
  LDP_CHECK_EQ(parents[0], int64_t{-1});
  std::vector<std::vector<uint32_t>> children(parents.size());
  for (size_t i = 1; i < parents.size(); ++i) {
    LDP_CHECK_GE(parents[i], int64_t{0});
    LDP_CHECK_LT(parents[i], static_cast<int64_t>(i));
    children[parents[i]].push_back(static_cast<uint32_t>(i));
  }
  return children;
}

// 1/v with the conventions the passes need: an exactly-known value (v = 0)
// gets infinite weight, a report-free node (v = +inf) gets zero weight.
double InverseWeight(double v) {
  if (v <= 0.0) return std::numeric_limits<double>::infinity();
  if (!std::isfinite(v)) return 0.0;
  return 1.0 / v;
}

}  // namespace

void EnforceAdaptiveConsistency(std::span<const int64_t> parents,
                                std::vector<double>& values,
                                std::vector<double>& variances,
                                std::optional<double> root_pin) {
  LDP_CHECK_EQ(values.size(), parents.size());
  LDP_CHECK_EQ(variances.size(), parents.size());
  std::vector<std::vector<uint32_t>> children = ChildLists(parents);

  // Stage 1: bottom-up inverse-variance averaging. Reverse topological
  // order means every child's combined (value, variance) is final before
  // its parent reads it.
  for (size_t i = parents.size(); i-- > 0;) {
    if (children[i].empty()) continue;
    double child_sum = 0.0;
    double child_var = 0.0;
    for (uint32_t c : children[i]) {
      child_sum += values[c];
      child_var += variances[c];
    }
    double w_self = InverseWeight(variances[i]);
    double w_child = InverseWeight(child_var);
    if (std::isinf(w_self)) continue;  // exactly known; children defer
    if (std::isinf(w_child)) {
      values[i] = child_sum;
      variances[i] = 0.0;
    } else if (w_self + w_child > 0.0) {
      values[i] =
          (w_self * values[i] + w_child * child_sum) / (w_self + w_child);
      variances[i] = 1.0 / (w_self + w_child);
    }
    // w_self == w_child == 0: no information on either side; keep as is.
  }

  // Stage 2: top-down mean consistency, mismatch distributed in
  // proportion to child variance (a high-variance child absorbs more of
  // the correction; equal variances reduce to Hay et al.'s 1/B shares).
  if (root_pin.has_value()) {
    values[0] = *root_pin;
    variances[0] = 0.0;
  }
  for (size_t i = 0; i < parents.size(); ++i) {
    if (children[i].empty()) continue;
    double child_sum = 0.0;
    double child_var = 0.0;
    bool finite_vars = true;
    for (uint32_t c : children[i]) {
      child_sum += values[c];
      child_var += variances[c];
      finite_vars = finite_vars && std::isfinite(variances[c]);
    }
    double mismatch = values[i] - child_sum;
    if (mismatch == 0.0) continue;
    if (finite_vars && child_var > 0.0) {
      for (uint32_t c : children[i]) {
        values[c] += mismatch * (variances[c] / child_var);
      }
    } else {
      double share = mismatch / static_cast<double>(children[i].size());
      for (uint32_t c : children[i]) values[c] += share;
    }
  }
}

void NonNegativeRescaleTopDown(std::span<const int64_t> parents,
                               std::vector<double>& values) {
  LDP_CHECK_EQ(values.size(), parents.size());
  std::vector<std::vector<uint32_t>> children = ChildLists(parents);
  values[0] = std::max(values[0], 0.0);
  for (size_t i = 0; i < parents.size(); ++i) {
    if (children[i].empty()) continue;
    double target = values[i];  // >= 0 by induction down the tree
    double positive = 0.0;
    for (uint32_t c : children[i]) {
      values[c] = std::max(values[c], 0.0);
      positive += values[c];
    }
    if (positive > 0.0) {
      double scale = target / positive;
      for (uint32_t c : children[i]) values[c] *= scale;
    } else if (target > 0.0) {
      double share = target / static_cast<double>(children[i].size());
      for (uint32_t c : children[i]) values[c] = share;
    }
  }
}

}  // namespace ldp
