#include "core/variance.h"

#include <cmath>

#include "common/bit_util.h"
#include "common/check.h"
#include "frequency/frequency_oracle.h"

namespace ldp {

namespace {

double LogBase(double base, double x) { return std::log(x) / std::log(base); }

}  // namespace

double FlatRangeVarianceBound(uint64_t r, double eps, double n) {
  return static_cast<double>(r) * OracleVariance(eps, n);
}

double FlatAverageVarianceBound(uint64_t domain, double eps, double n) {
  return (static_cast<double>(domain) + 2.0) / 3.0 * OracleVariance(eps, n);
}

double HhRangeVarianceBound(uint64_t domain, uint64_t fanout, uint64_t r,
                            double eps, double n) {
  LDP_CHECK_GE(fanout, 2u);
  LDP_CHECK_GE(r, 1u);
  double b = static_cast<double>(fanout);
  double h = static_cast<double>(TreeHeight(domain, fanout));
  double alpha =
      std::ceil(LogBase(b, static_cast<double>(r))) + 1.0;
  return (2.0 * b - 1.0) * h * alpha * OracleVariance(eps, n);
}

double HhConsistentRangeVarianceBound(uint64_t domain, uint64_t fanout,
                                      uint64_t r, double eps, double n) {
  LDP_CHECK_GE(fanout, 2u);
  LDP_CHECK_GE(r, 2u);
  double b = static_cast<double>(fanout);
  double log_r = LogBase(b, static_cast<double>(r));
  double log_d = LogBase(b, static_cast<double>(domain));
  return (b + 1.0) * log_r * log_d * OracleVariance(eps, n) / 2.0;
}

double HaarRangeVarianceBound(uint64_t domain, double eps, double n) {
  double h = std::log2(static_cast<double>(domain));
  return 0.5 * h * h * OracleVariance(eps, n);
}

double PrefixVarianceFactor() { return 0.5; }

double OptimalBranchingFactor(bool with_consistency) {
  // Newton's method on g(B) = B ln B - 2B + c with c = +2 (no CI) or -2
  // (CI); g'(B) = ln B - 1.
  double c = with_consistency ? -2.0 : 2.0;
  double b = with_consistency ? 9.0 : 5.0;
  for (int iter = 0; iter < 64; ++iter) {
    double g = b * std::log(b) - 2.0 * b + c;
    double dg = std::log(b) - 1.0;
    double next = b - g / dg;
    if (std::abs(next - b) < 1e-12) {
      return next;
    }
    b = next;
  }
  return b;
}

}  // namespace ldp
