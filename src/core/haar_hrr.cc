#include "core/haar_hrr.h"

#include <cmath>

#include "common/bit_util.h"
#include "common/check.h"

namespace ldp {

HaarHrrMechanism::HaarHrrMechanism(uint64_t domain, double eps)
    : RangeMechanism(domain, eps),
      padded_(NextPowerOfTwo(domain)),
      height_(Log2Floor(padded_)) {
  LDP_CHECK_GE(height_, 1u);
  level_oracles_.reserve(height_);
  for (uint32_t l = 1; l <= height_; ++l) {
    level_oracles_.push_back(
        std::make_unique<HrrOracle>(padded_ >> l, eps));
  }
}

double HaarHrrMechanism::ReportBits() const {
  double level_id_bits = static_cast<double>(Log2Ceil(height_));
  double bits = 0.0;
  for (const auto& oracle : level_oracles_) {
    bits += oracle->ReportBits();
  }
  return level_id_bits + bits / static_cast<double>(height_);
}

void HaarHrrMechanism::EncodeUser(uint64_t value, Rng& rng) {
  LDP_CHECK_LT(value, domain_);
  LDP_CHECK_MSG(!finalized_, "EncodeUser after Finalize");
  uint32_t level = 1 + static_cast<uint32_t>(rng.UniformInt(height_));
  HaarUserCoefficient view = HaarUserView(value, level);
  level_oracles_[level - 1]->SubmitSignedValue(view.block, view.sign, rng);
  ++users_;
}

void HaarHrrMechanism::EncodeUsers(std::span<const uint64_t> values,
                                   Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "EncodeUsers after Finalize");
  // Same draw order as the EncodeUser loop (level pick, then submit).
  for (uint64_t value : values) {
    LDP_CHECK_LT(value, domain_);
    uint32_t level = 1 + static_cast<uint32_t>(rng.UniformInt(height_));
    HaarUserCoefficient view = HaarUserView(value, level);
    level_oracles_[level - 1]->SubmitSignedValue(view.block, view.sign, rng);
  }
  users_ += values.size();
}

std::unique_ptr<RangeMechanism> HaarHrrMechanism::CloneEmpty() const {
  return std::make_unique<HaarHrrMechanism>(domain_, eps_);
}

void HaarHrrMechanism::MergeFrom(const RangeMechanism& other) {
  const auto* o = dynamic_cast<const HaarHrrMechanism*>(&other);
  LDP_CHECK_MSG(o != nullptr, "MergeFrom requires a HaarHrrMechanism");
  LDP_CHECK_MSG(!finalized_ && !o->finalized_,
                "cannot merge finalized mechanisms");
  // Distinct domains can share a padded size (and thus identical level
  // oracles); reject instead of merging mismatched populations.
  LDP_CHECK(o->domain_ == domain_);
  for (size_t l = 0; l < level_oracles_.size(); ++l) {
    level_oracles_[l]->MergeFrom(*o->level_oracles_[l]);
  }
  users_ += o->users_;
}

void HaarHrrMechanism::Finalize(Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "Finalize called twice");
  coefficients_.height = height_;
  // c0 is the scaled total mass — exactly 1/sqrt(D) for fractions, no
  // perturbation required (paper: "hardcoded ... since it does not require
  // perturbation").
  coefficients_.average = 1.0 / std::sqrt(static_cast<double>(padded_));
  coefficients_.detail.resize(height_);
  for (uint32_t l = 1; l <= height_; ++l) {
    level_oracles_[l - 1]->Finalize(rng);
    // The oracle estimates the signed fraction vector g with
    // g[k] = S_L - S_R for block k; the orthonormal coefficient adds the
    // 2^{-l/2} scale.
    std::vector<double> g = level_oracles_[l - 1]->EstimateFractions();
    double scale = std::exp2(-0.5 * static_cast<double>(l));
    for (double& v : g) {
      v *= scale;
    }
    coefficients_.detail[l - 1] = std::move(g);
  }
  finalized_ = true;
}

double HaarHrrMechanism::RangeQuery(uint64_t a, uint64_t b) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, domain_);
  return HaarRangeEstimate(coefficients_, padded_, a, b);
}

RangeEstimate HaarHrrMechanism::RangeQueryWithUncertainty(
    uint64_t a, uint64_t b) const {
  LDP_CHECK_MSG(finalized_, "RangeQuery before Finalize");
  LDP_CHECK_LE(a, b);
  LDP_CHECK_LT(b, domain_);
  // Var = sum over boundary-cut coefficients of
  //   weight^2 * Var(c_hat) with Var(c_hat) = 2^-l * Var(g_hat)
  // (the level oracle estimates g; the orthonormal coefficient rescales
  // by 2^{-l/2}). c0 is exact and contributes nothing.
  double variance = 0.0;
  for (uint32_t l = 1; l <= height_; ++l) {
    double coeff_var = std::exp2(-static_cast<double>(l)) *
                       level_oracles_[l - 1]->EstimatorVariance();
    uint64_t ka = a >> l;
    uint64_t kb = b >> l;
    double wa = HaarRangeWeight(l, ka, a, b);
    variance += wa * wa * coeff_var;
    if (kb != ka) {
      double wb = HaarRangeWeight(l, kb, a, b);
      variance += wb * wb * coeff_var;
    }
  }
  return RangeEstimate{HaarRangeEstimate(coefficients_, padded_, a, b),
                       std::sqrt(variance)};
}

std::vector<double> HaarHrrMechanism::EstimateFrequencies() const {
  LDP_CHECK_MSG(finalized_, "EstimateFrequencies before Finalize");
  std::vector<double> leaves = HaarInverse(coefficients_);
  leaves.resize(domain_);
  return leaves;
}

const HaarCoefficients& HaarHrrMechanism::coefficients() const {
  LDP_CHECK_MSG(finalized_, "coefficients before Finalize");
  return coefficients_;
}

}  // namespace ldp
