// Discrete Haar Transform utilities (paper Section 4.6).
//
// We use the orthonormal convention: for a leaf vector x of length D = 2^h,
// the transform keeps one "average" coefficient c0 = sum(x)/sqrt(D) and, for
// each level l = 1..h (l = 1 finest), D/2^l "detail" coefficients
//
//   c_{l,k} = 2^{-l/2} * ( S_L - S_R )
//
// where S_L / S_R sum x over the left / right half of the k-th block of
// length 2^l. The transform is its own inverse (orthonormal), and a range
// query's answer is a sparse linear functional of the coefficients: a block
// fully inside or outside the range has weight zero, so only the <= 2 blocks
// per level cut by the range boundaries contribute, with weight
// 2^{-l/2} (O_L - O_R) (paper's error analysis).

#ifndef LDPRANGE_CORE_HAAR_H_
#define LDPRANGE_CORE_HAAR_H_

#include <cstdint>
#include <vector>

namespace ldp {

/// Orthonormal Haar coefficients of a power-of-two-length vector.
struct HaarCoefficients {
  /// Number of levels h = log2(D).
  uint32_t height = 0;
  /// c0 = sum(x) / sqrt(D).
  double average = 0.0;
  /// detail[l-1][k] = c_{l,k}; level l has D / 2^l entries.
  std::vector<std::vector<double>> detail;
};

/// Forward transform. `leaves.size()` must be a power of two (>= 1).
HaarCoefficients HaarForward(const std::vector<double>& leaves);

/// Inverse transform (exact up to floating-point rounding).
std::vector<double> HaarInverse(const HaarCoefficients& coefficients);

/// The single nonzero detail coefficient position of a one-hot input e_z at
/// level l: block index z >> l, sign +1 if z falls in the block's left half.
struct HaarUserCoefficient {
  uint64_t block;
  int sign;
};
HaarUserCoefficient HaarUserView(uint64_t z, uint32_t level);

/// Weight of detail coefficient (level, block) in the range query [a, b]:
/// 2^{-level/2} * (|[a,b] ∩ left half| - |[a,b] ∩ right half|).
double HaarRangeWeight(uint32_t level, uint64_t block, uint64_t a, uint64_t b);

/// Range mass reconstruction from (possibly noisy) coefficients: combines
/// the average coefficient with the <= 2 boundary-cut detail coefficients
/// per level. `padded_domain` = 2^coefficients.height; requires
/// a <= b < padded_domain. Shared by HaarHrrMechanism, the centralized
/// wavelet and the wire-protocol server.
double HaarRangeEstimate(const HaarCoefficients& coefficients,
                         uint64_t padded_domain, uint64_t a, uint64_t b);

}  // namespace ldp

#endif  // LDPRANGE_CORE_HAAR_H_
