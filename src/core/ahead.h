// AHEAD-style adaptive hierarchical decomposition (Du et al., CCS 2021,
// adapted to this library's two-phase simulation harness).
//
// The paper's HH_B mechanisms fix the fanout B a priori, so every subtree
// is split all the way down — including subtrees whose counts are
// indistinguishable from noise, where the extra levels only add variance.
// AHEAD instead makes the tree shape *data-dependent*:
//
//   Phase 1: a configured fraction of users reports through a
//     level-sampled hierarchical histogram over the complete B-ary tree
//     (an embedded HH_B — each user reports the tree node containing
//     their value at one uniformly sampled level), so every candidate
//     node's mass is estimated *at its own granularity* with constant
//     variance — a flat phase-1 histogram would estimate a depth-1 node
//     as a sum of B^{h-1} noisy cells, pure noise. The aggregator then
//     decomposes the domain top-down: a node is split into its B children
//     only when its estimated mass clears a variance-derived threshold
//     theta = scale * 2 * sqrt(V_F(eps, n2/depth-cap)) — the noise floor
//     of the phase-2 estimates its children would receive; a node whose
//     mass the refinement could not resolve stays a leaf covering its
//     whole interval.
//   Phase 2: the remaining users report under the resulting irregular
//     tree with the usual level-sampling trick: each user samples one tree
//     level uniformly and reports the element of that level's *frontier*
//     (children of split nodes plus all shallower leaves, carried down so
//     every level partitions the domain) containing their value.
//
// A leaf that is carried through several frontiers receives an independent
// estimate at each level; Finalize combines them by inverse-variance
// weighting, then runs the irregular-tree generalization of Section 4.5's
// constrained inference (core/consistency.h) plus a non-negativity
// rebalance. Range queries walk the adaptive tree; ranges that end inside
// a leaf use the uniform-within-leaf assumption, trading a small bias on
// sub-leaf resolution for the (much larger, on skewed data) variance
// saved by not splitting noise-level subtrees.

#ifndef LDPRANGE_CORE_AHEAD_H_
#define LDPRANGE_CORE_AHEAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/badic.h"
#include "core/hierarchical.h"
#include "core/range_mechanism.h"
#include "frequency/frequency_oracle.h"

namespace ldp {

/// One node of an adaptive tree, addressed both by its position in the
/// underlying complete B-ary tree (`node`) and by the leaf interval
/// [block_start, block_end) it covers in the padded domain.
struct AdaptiveNode {
  TreeNode node;               // (depth, index) in complete-tree coordinates
  uint64_t block_start = 0;    // first padded leaf covered
  uint64_t block_end = 0;      // one past the last padded leaf covered
  int64_t parent = -1;         // index into AdaptiveTree::nodes(), -1 = root
  uint32_t first_child = 0;    // index of first child (children contiguous)
  uint32_t num_children = 0;   // 0 = leaf

  bool is_leaf() const { return num_children == 0; }
  uint64_t block_length() const { return block_end - block_start; }
};

/// An irregular (adaptively split) B-ary decomposition of a domain.
///
/// Nodes are stored in BFS order (node 0 is the root, parents precede
/// children). The tree defines `num_levels()` reporting frontiers: frontier
/// l >= 1 consists, left to right, of every depth-l child of a split node
/// plus every leaf at depth < l carried down — so each frontier partitions
/// the padded domain and every value maps to exactly one frontier element.
class AdaptiveTree {
 public:
  /// Grows a tree over `shape` by asking `should_split` for every node in
  /// BFS order. The root is always split; nodes at depth >= max_depth or
  /// with a single-leaf block never are. max_depth = 0 means the full
  /// tree height.
  static AdaptiveTree Grow(const TreeShape& shape, uint32_t max_depth,
                           const std::function<bool(const TreeNode&)>&
                               should_split);

  /// Reconstructs a tree from the exact set of split (internal) nodes, as
  /// shipped over the wire. `splits` must be in BFS order — sorted by
  /// (depth, index), starting with the root — every non-root split node's
  /// parent must itself be split, and all coordinates must be in range.
  /// Returns nullopt when any of that fails (total over adversarial
  /// input, never a crash).
  static std::optional<AdaptiveTree> TryFromSplits(
      const TreeShape& shape, std::span<const TreeNode> splits);

  const TreeShape& shape() const { return shape_; }
  const std::vector<AdaptiveNode>& nodes() const { return nodes_; }

  /// Number of reporting frontiers (= deepest split depth + 1, >= 1).
  uint32_t num_levels() const {
    return static_cast<uint32_t>(frontiers_.size());
  }

  /// The split (internal) nodes in BFS order — the wire representation.
  std::vector<TreeNode> SplitNodes() const;

  /// Number of elements of frontier `level` (1-based).
  uint64_t FrontierSize(uint32_t level) const;

  /// Node index (into nodes()) of element `j` of frontier `level`.
  uint32_t FrontierNode(uint32_t level, uint64_t j) const;

  /// Index within frontier `level` of the element containing leaf `z`
  /// (z < padded domain). Binary search, O(log |frontier|).
  uint64_t FrontierIndex(uint32_t level, uint64_t z) const;

  /// Frontier levels in which node `i` reports: an internal node appears
  /// only at its own depth, a leaf from its depth through num_levels().
  /// The root (depth 0, known exactly) appears nowhere.
  std::pair<uint32_t, uint32_t> NodeLevelRange(uint32_t i) const;

  /// Parent indices in consistency.h's layout: parents[i] < i, -1 for the
  /// root — the adaptive tree is BFS-ordered, so this is a direct copy.
  std::vector<int64_t> ParentIndices() const;

 private:
  explicit AdaptiveTree(const TreeShape& shape) : shape_(shape) {}

  void BuildFrontiers();

  TreeShape shape_;
  std::vector<AdaptiveNode> nodes_;
  // frontiers_[l-1] = node indices of frontier l; starts_[l-1][j] = block
  // start of element j (for the FrontierIndex binary search).
  std::vector<std::vector<uint32_t>> frontiers_;
  std::vector<std::vector<uint64_t>> starts_;
};

/// Combines per-frontier-level estimates into per-node values: a node
/// appearing in several frontiers (a carried leaf) gets the
/// inverse-variance weighted average of its appearances — the
/// minimum-variance unbiased combination. `level_estimates[l-1][j]` is
/// frontier l's estimate for its j-th element and `level_variances[l-1]`
/// that level's per-element estimator variance (+inf for a level with no
/// reports). Outputs are indexed like tree.nodes(); the root is pinned to
/// (1, 0), a node with no usable level to (0, +inf). Shared by
/// AheadMechanism and the wire server (protocol/ahead_protocol.h).
void CombineFrontierEstimates(
    const AdaptiveTree& tree,
    std::span<const std::vector<double>> level_estimates,
    std::span<const double> level_variances,
    std::vector<double>* node_values, std::vector<double>* node_variances);

/// Range estimate over an adaptive tree given per-node values/variances:
/// sums the maximal tree nodes inside [a, b] (inclusive) and resolves a
/// partial overlap with a leaf by the uniform-within-leaf assumption.
RangeEstimate AdaptiveRangeEstimate(const AdaptiveTree& tree,
                                    std::span<const double> node_values,
                                    std::span<const double> node_variances,
                                    uint64_t a, uint64_t b);

/// Per-item frequency vector (length `domain`): each leaf's mass spread
/// uniformly over its block, padding cells beyond `domain` dropped.
std::vector<double> AdaptiveLeafFrequencies(
    const AdaptiveTree& tree, std::span<const double> node_values,
    uint64_t domain);

/// Configuration for the AHEAD mechanism.
struct AheadConfig {
  uint64_t fanout = 4;                            // B
  OracleKind oracle = OracleKind::kOueSimulated;  // phase-1 + per-level F
  /// Fraction of users routed (by private coin) to the phase-1 coarse
  /// histogram; the rest report under the adaptive tree. Must be in (0,1).
  double phase1_fraction = 0.15;
  /// Depth cap for the adaptive split; 0 = the full tree height.
  uint32_t max_depth = 0;
  /// Scales the split threshold theta = scale * 2 * sqrt(Var_phase1(node)).
  /// Larger = coarser trees; <= 0 forces a full split to max_depth (the
  /// degenerate case, equivalent in shape to fixed-fanout HH_B).
  double threshold_scale = 1.0;
  /// Apply the irregular-tree constrained inference after decode.
  bool consistency = true;
  /// Apply the non-negativity rebalance after constrained inference.
  /// (Clamping is the one post-processing step that trades a little bias
  /// for variance; the unbiasedness property tests switch it off.)
  bool nonnegativity = true;
};

/// Resolves an AheadConfig-style depth cap against a tree: 0 (and
/// anything deeper than the tree) means the full height. Shared by the
/// mechanism and the wire server so the two can never normalize a cap
/// differently.
uint32_t ResolveAheadDepthCap(const TreeShape& shape, uint32_t max_depth);

/// Table label for an AHEAD configuration, e.g. "AHEAD4", "AHEAD2-GRR"
/// (the default oracle is elided, matching the HH naming convention).
std::string AheadMethodName(const AheadConfig& config);

/// Two-phase adaptive hierarchical mechanism ("AHEAD_B").
///
/// Simulation trust model: like OracleKind::kOueSimulated, the aggregate
/// keeps exact per-phase counts during ingestion and draws the oracle
/// noise at Finalize() time — statistically identical to the per-user
/// protocol at the aggregator, O(1) per user, and (because every
/// aggregate is an integer counter) bit-identical under EncodeUsersSharded
/// for any thread count. The wire-deployable split of the same pipeline
/// lives in src/protocol/ahead_protocol.h.
class AheadMechanism final : public RangeMechanism {
 public:
  AheadMechanism(uint64_t domain, double eps, const AheadConfig& config);

  const AheadConfig& config() const { return config_; }
  const TreeShape& shape() const { return shape_; }
  uint64_t phase1_user_count() const { return phase1_users_; }
  uint64_t phase2_user_count() const { return phase2_users_; }

  /// The adaptive tree (post-Finalize only).
  const AdaptiveTree& tree() const;

  /// Post-Finalize estimate (and variance) of node i's population mass.
  double NodeEstimate(uint32_t i) const;
  double NodeVariance(uint32_t i) const;

  uint64_t user_count() const override { return users_; }
  std::string Name() const override;
  double ReportBits() const override;
  void EncodeUser(uint64_t value, Rng& rng) override;
  void EncodeUsers(std::span<const uint64_t> values, Rng& rng) override;
  std::unique_ptr<RangeMechanism> CloneEmpty() const override;
  void MergeFrom(const RangeMechanism& other) override;
  void Finalize(Rng& rng) override;
  double RangeQuery(uint64_t a, uint64_t b) const override;
  RangeEstimate RangeQueryWithUncertainty(uint64_t a,
                                          uint64_t b) const override;
  std::vector<double> EstimateFrequencies() const override;

 private:
  AheadConfig config_;
  TreeShape shape_;
  uint32_t max_depth_;
  // Phase 1 is a full embedded HH_B (level sampling, constrained
  // inference) whose only job is to place the splits.
  std::unique_ptr<HierarchicalMechanism> phase1_tree_;
  std::vector<uint64_t> phase2_counts_;  // exact histogram, drawn at Finalize
  uint64_t users_ = 0;
  uint64_t phase1_users_ = 0;
  uint64_t phase2_users_ = 0;
  bool finalized_ = false;
  std::optional<AdaptiveTree> tree_;
  std::vector<double> node_values_;     // post-Finalize, indexed like nodes()
  std::vector<double> node_variances_;
};

}  // namespace ldp

#endif  // LDPRANGE_CORE_AHEAD_H_
