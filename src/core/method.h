// Declarative specification of a range-query method, used by the experiment
// harness and every bench so that "which methods to compare" is data, not
// code. Covers the full method grid of the paper's evaluation: flat methods
// over any oracle, HH_B with/without consistency over any oracle, and
// HaarHRR.

#ifndef LDPRANGE_CORE_METHOD_H_
#define LDPRANGE_CORE_METHOD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/ahead.h"
#include "core/range_mechanism.h"
#include "frequency/frequency_oracle.h"

namespace ldp {

/// Families of range mechanisms: the paper's three, the AHEAD-style
/// adaptive decomposition (core/ahead.h), and the Section 6
/// multidimensional hierarchical grids (core/multidim.h).
enum class MethodFamily {
  kFlat,
  kHierarchical,
  kHaar,
  kAhead,
  kHier2D,
  kGrid,
};

/// A fully-specified method. Construct via the factory helpers.
struct MethodSpec {
  MethodFamily family = MethodFamily::kFlat;
  OracleKind oracle = OracleKind::kOueSimulated;
  uint64_t fanout = 4;       // hierarchical only
  bool consistency = true;   // hierarchical only
  /// kAhead's single source of truth: MakeMechanism and Name() read only
  /// this for AHEAD specs. The factories also mirror its fanout/oracle/
  /// consistency into the top-level fields for grid code that filters on
  /// them, but mutating those copies does not change the mechanism.
  AheadConfig ahead;
  /// kHier2D / kGrid only: number of axes (2 for kHier2D) and the
  /// summed-oracle-domain memory cap of core/multidim.h.
  uint32_t dimensions = 1;
  uint64_t max_total_cells = uint64_t{1} << 26;

  /// Flat method over `oracle` (paper Section 4.2).
  static MethodSpec Flat(OracleKind oracle);

  /// HH_B over `oracle`, optionally with constrained inference
  /// (paper Sections 4.4-4.5). The paper's "HHc_B" is Hh(B, kOueSimulated,
  /// /*consistency=*/true).
  static MethodSpec Hh(uint64_t fanout, OracleKind oracle, bool consistency);

  /// HaarHRR (paper Section 4.6).
  static MethodSpec Haar();

  /// AHEAD_B with default two-phase parameters (Du et al., CCS 2021 —
  /// adaptive hierarchical decomposition, core/ahead.h).
  static MethodSpec Ahead(uint64_t fanout = 4,
                          OracleKind oracle = OracleKind::kOueSimulated);

  /// AHEAD with every knob explicit.
  static MethodSpec AheadWith(const AheadConfig& config);

  /// 2-D hierarchical grid (paper Section 6, d = 2).
  static MethodSpec Hier2D(uint64_t fanout = 2,
                           OracleKind oracle = OracleKind::kOueSimulated);

  /// d-dimensional hierarchical grid (paper Section 6).
  static MethodSpec Grid(uint32_t dimensions, uint64_t fanout = 2,
                         OracleKind oracle = OracleKind::kOueSimulated);

  /// Table label, e.g. "Flat-OUE", "HHc4", "TreeHRR", "HaarHRR", "AHEAD4",
  /// "HH2D2", "HH3D2".
  std::string Name() const;
};

/// Instantiates the mechanism for a (per-axis domain, epsilon) pair on the
/// dimension-aware interface. Multidim families yield HierarchicalGrid;
/// 1-D families yield their RangeMechanism (which is a MechanismBase).
std::unique_ptr<MechanismBase> MakeMechanismBase(const MethodSpec& spec,
                                                 uint64_t domain, double eps);

/// Instantiates the mechanism for a (domain, epsilon) pair on the classic
/// 1-D interface. Multidim families are served through their axis-0
/// marginal view (values embed as points (v, 0, ..., 0); intervals as
/// boxes [a, b] x [0, D)^{d-1}), so 1-D harnesses can drive every family.
std::unique_ptr<RangeMechanism> MakeMechanism(const MethodSpec& spec,
                                              uint64_t domain, double eps);

}  // namespace ldp

#endif  // LDPRANGE_CORE_METHOD_H_
