// Declarative specification of a range-query method, used by the experiment
// harness and every bench so that "which methods to compare" is data, not
// code. Covers the full method grid of the paper's evaluation: flat methods
// over any oracle, HH_B with/without consistency over any oracle, and
// HaarHRR.

#ifndef LDPRANGE_CORE_METHOD_H_
#define LDPRANGE_CORE_METHOD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/range_mechanism.h"
#include "frequency/frequency_oracle.h"

namespace ldp {

/// Families of range mechanisms in the paper.
enum class MethodFamily {
  kFlat,
  kHierarchical,
  kHaar,
};

/// A fully-specified method. Construct via the factory helpers.
struct MethodSpec {
  MethodFamily family = MethodFamily::kFlat;
  OracleKind oracle = OracleKind::kOueSimulated;
  uint64_t fanout = 4;       // hierarchical only
  bool consistency = true;   // hierarchical only

  /// Flat method over `oracle` (paper Section 4.2).
  static MethodSpec Flat(OracleKind oracle);

  /// HH_B over `oracle`, optionally with constrained inference
  /// (paper Sections 4.4-4.5). The paper's "HHc_B" is Hh(B, kOueSimulated,
  /// /*consistency=*/true).
  static MethodSpec Hh(uint64_t fanout, OracleKind oracle, bool consistency);

  /// HaarHRR (paper Section 4.6).
  static MethodSpec Haar();

  /// Table label, e.g. "Flat-OUE", "HHc4", "TreeHRR", "HaarHRR".
  std::string Name() const;
};

/// Instantiates the mechanism for a (domain, epsilon) pair.
std::unique_ptr<RangeMechanism> MakeMechanism(const MethodSpec& spec,
                                              uint64_t domain, double eps);

}  // namespace ldp

#endif  // LDPRANGE_CORE_METHOD_H_
