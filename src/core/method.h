// Declarative specification of a range-query method, used by the experiment
// harness and every bench so that "which methods to compare" is data, not
// code. Covers the full method grid of the paper's evaluation: flat methods
// over any oracle, HH_B with/without consistency over any oracle, and
// HaarHRR.

#ifndef LDPRANGE_CORE_METHOD_H_
#define LDPRANGE_CORE_METHOD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/ahead.h"
#include "core/range_mechanism.h"
#include "frequency/frequency_oracle.h"

namespace ldp {

/// Families of range mechanisms: the paper's three plus the AHEAD-style
/// adaptive decomposition (core/ahead.h).
enum class MethodFamily {
  kFlat,
  kHierarchical,
  kHaar,
  kAhead,
};

/// A fully-specified method. Construct via the factory helpers.
struct MethodSpec {
  MethodFamily family = MethodFamily::kFlat;
  OracleKind oracle = OracleKind::kOueSimulated;
  uint64_t fanout = 4;       // hierarchical only
  bool consistency = true;   // hierarchical only
  /// kAhead's single source of truth: MakeMechanism and Name() read only
  /// this for AHEAD specs. The factories also mirror its fanout/oracle/
  /// consistency into the top-level fields for grid code that filters on
  /// them, but mutating those copies does not change the mechanism.
  AheadConfig ahead;

  /// Flat method over `oracle` (paper Section 4.2).
  static MethodSpec Flat(OracleKind oracle);

  /// HH_B over `oracle`, optionally with constrained inference
  /// (paper Sections 4.4-4.5). The paper's "HHc_B" is Hh(B, kOueSimulated,
  /// /*consistency=*/true).
  static MethodSpec Hh(uint64_t fanout, OracleKind oracle, bool consistency);

  /// HaarHRR (paper Section 4.6).
  static MethodSpec Haar();

  /// AHEAD_B with default two-phase parameters (Du et al., CCS 2021 —
  /// adaptive hierarchical decomposition, core/ahead.h).
  static MethodSpec Ahead(uint64_t fanout = 4,
                          OracleKind oracle = OracleKind::kOueSimulated);

  /// AHEAD with every knob explicit.
  static MethodSpec AheadWith(const AheadConfig& config);

  /// Table label, e.g. "Flat-OUE", "HHc4", "TreeHRR", "HaarHRR", "AHEAD4".
  std::string Name() const;
};

/// Instantiates the mechanism for a (domain, epsilon) pair.
std::unique_ptr<RangeMechanism> MakeMechanism(const MethodSpec& spec,
                                              uint64_t domain, double eps);

}  // namespace ldp

#endif  // LDPRANGE_CORE_METHOD_H_
