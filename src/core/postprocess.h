// Statistical post-processing of LDP estimates (free under DP: any
// function of a private release stays private).
//
// The mechanisms' raw estimates are unbiased but unconstrained — point
// frequencies can be negative and CDF estimates non-monotone. Two standard
// repairs, both used as optional extensions of the paper's pipeline:
//
//  * NormSubProjection — project a frequency vector onto the probability
//    simplex by the "Norm-Sub" rule (Wang et al., 2020): clamp negatives
//    to zero and shift the remaining positive entries by a common additive
//    constant so the total returns to 1, iterating until stable. Helps
//    point queries and densities handed to downstream models.
//  * IsotonicRegression — pool-adjacent-violators (PAV): the least-squares
//    non-decreasing fit to a noisy prefix-mass curve. Monotone CDFs make
//    quantile binary search well-posed; bench_ablation_design quantifies
//    the quantile-error gain.

#ifndef LDPRANGE_CORE_POSTPROCESS_H_
#define LDPRANGE_CORE_POSTPROCESS_H_

#include <cstdint>
#include <vector>

#include "core/range_mechanism.h"

namespace ldp {

/// In-place Norm-Sub projection of `frequencies` onto the probability
/// simplex: result is entrywise >= 0 and sums to 1 (when the input has any
/// mass; an all-<=0 input degrades to uniform).
void NormSubProjection(std::vector<double>& frequencies);

/// Least-squares non-decreasing fit via pool-adjacent-violators. O(n).
std::vector<double> IsotonicRegression(const std::vector<double>& values);

/// Monotone, [0,1]-clamped CDF estimate from a mechanism's prefix
/// queries: evaluates all D prefixes, applies PAV, clamps.
std::vector<double> SmoothedCdf(const RangeMechanism& mechanism);

/// Smallest item whose smoothed CDF reaches phi (requires a monotone cdf,
/// e.g. from SmoothedCdf; plain binary search).
uint64_t QuantileFromCdf(const std::vector<double>& cdf, double phi);

}  // namespace ldp

#endif  // LDPRANGE_CORE_POSTPROCESS_H_
