#include "core/quantile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ldp {

uint64_t TrueQuantile(const std::vector<double>& true_cdf, double phi) {
  LDP_CHECK(!true_cdf.empty());
  auto it = std::lower_bound(true_cdf.begin(), true_cdf.end(), phi);
  if (it == true_cdf.end()) {
    return true_cdf.size() - 1;
  }
  return static_cast<uint64_t>(it - true_cdf.begin());
}

QuantileEvaluation EvaluateQuantile(const RangeMechanism& mechanism,
                                    const std::vector<double>& true_cdf,
                                    double phi) {
  LDP_CHECK_EQ(true_cdf.size(), mechanism.domain_size());
  QuantileEvaluation eval;
  eval.true_item = TrueQuantile(true_cdf, phi);
  eval.estimated_item = mechanism.QuantileQuery(phi);
  eval.value_error =
      std::abs(static_cast<double>(eval.estimated_item) -
               static_cast<double>(eval.true_item));
  eval.quantile_error = std::abs(true_cdf[eval.estimated_item] - phi);
  return eval;
}

}  // namespace ldp
