// Bit-manipulation helpers shared by the Hadamard/Haar transforms and the
// B-adic tree indexing code.

#ifndef LDPRANGE_COMMON_BIT_UTIL_H_
#define LDPRANGE_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>

#include "common/check.h"

namespace ldp {

/// True iff `x` is a power of two (1, 2, 4, ...). Zero is not a power of two.
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x >= 1.
constexpr uint32_t Log2Floor(uint64_t x) {
  return 63u - static_cast<uint32_t>(std::countl_zero(x | 1));
}

/// ceil(log2(x)) for x >= 1.
constexpr uint32_t Log2Ceil(uint64_t x) {
  return IsPowerOfTwo(x) ? Log2Floor(x) : Log2Floor(x) + 1;
}

/// Smallest power of two >= x (x >= 1).
constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  return uint64_t{1} << Log2Ceil(x);
}

/// Parity of popcount(a & b): the sign exponent of the (scaled) Hadamard
/// matrix entry phi[a][b] = (-1)^{<a,b>} used by HRR (paper Section 3.2).
/// Returns +1 or -1.
inline int HadamardSign(uint64_t a, uint64_t b) {
  return (std::popcount(a & b) & 1) != 0 ? -1 : +1;
}

/// Integer power B^e with overflow checking (domain sizes fit in 64 bits).
constexpr uint64_t IntPow(uint64_t base, uint32_t exp) {
  uint64_t result = 1;
  for (uint32_t i = 0; i < exp; ++i) {
    result *= base;
  }
  return result;
}

/// Smallest h >= 1 such that B^h >= d; the height of a complete B-ary tree
/// whose leaf level has at least `d` nodes. Requires B >= 2, d >= 2.
inline uint32_t TreeHeight(uint64_t d, uint64_t b) {
  LDP_CHECK_GE(b, 2u);
  LDP_CHECK_GE(d, 2u);
  uint32_t h = 0;
  uint64_t span = 1;
  while (span < d) {
    span *= b;
    ++h;
  }
  return h;
}

}  // namespace ldp

#endif  // LDPRANGE_COMMON_BIT_UTIL_H_
