#include "common/binomial.h"

#include <cmath>

#include "common/check.h"

namespace ldp {

namespace internal {

namespace {

// Tail of the Stirling series for log(k!); from Hörmann (1993), as used by
// the TensorFlow implementation of BTRS.
double StirlingApproxTail(double k) {
  static const double kTailValues[] = {
      0.0810614667953272,  0.0413406959554092,  0.0276779256849983,
      0.02079067210376509, 0.0166446911898211,  0.0138761288230707,
      0.0118967099458917,  0.0104112652619720,  0.00925546218271273,
      0.00833056343336287};
  if (k <= 9) {
    return kTailValues[static_cast<int>(k)];
  }
  double kp1sq = (k + 1) * (k + 1);
  return (1.0 / 12 - (1.0 / 360 - 1.0 / 1260 / kp1sq) / kp1sq) / (k + 1);
}

}  // namespace

int64_t BinomialInversion(int64_t n, double p, Rng& rng) {
  LDP_DCHECK(p > 0.0 && p <= 0.5);
  // "Second waiting time" method: add geometric gaps until the trial budget
  // is exhausted. Expected number of loop iterations is n*p + 1.
  const double logq = std::log1p(-p);
  int64_t count = -1;
  double trials_used = 0.0;
  while (true) {
    double u = 0.0;
    do {
      u = rng.UniformDouble();
    } while (u <= 0.0);
    trials_used += std::floor(std::log(u) / logq) + 1.0;
    ++count;
    if (trials_used > static_cast<double>(n)) {
      return count;
    }
  }
}

int64_t BinomialBtrs(int64_t n, double p, Rng& rng) {
  LDP_DCHECK(p > 0.0 && p <= 0.5);
  const double nd = static_cast<double>(n);
  const double r = p / (1 - p);
  const double npq = nd * p * (1 - p);
  const double sqrt_npq = std::sqrt(npq);
  const double b = 1.15 + 2.53 * sqrt_npq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double alpha = (2.83 + 5.1 / b) * sqrt_npq;
  const double m = std::floor((nd + 1) * p);

  while (true) {
    double u = rng.UniformDouble() - 0.5;
    double v = rng.UniformDouble();
    double us = 0.5 - std::abs(u);
    double kd = std::floor((2 * a / us + b) * u + c);
    if (kd < 0 || kd > nd) {
      continue;  // target density is zero outside [0, n]
    }
    if (us >= 0.07 && v <= v_r) {
      return static_cast<int64_t>(kd);
    }
    // Slow path: full acceptance test in log space.
    v = std::log(v * alpha / (a / (us * us) + b));
    double upper =
        (m + 0.5) * std::log((m + 1) / (r * (nd - m + 1))) +
        (nd + 1) * std::log((nd - m + 1) / (nd - kd + 1)) +
        (kd + 0.5) * std::log(r * (nd - kd + 1) / (kd + 1)) +
        StirlingApproxTail(m) + StirlingApproxTail(nd - m) -
        StirlingApproxTail(kd) - StirlingApproxTail(nd - kd);
    if (v <= upper) {
      return static_cast<int64_t>(kd);
    }
  }
}

}  // namespace internal

int64_t SampleBinomial(int64_t n, double p, Rng& rng) {
  LDP_CHECK_GE(n, 0);
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - SampleBinomial(n, 1.0 - p, rng);
  if (static_cast<double>(n) * p < 10.0) {
    return internal::BinomialInversion(n, p, rng);
  }
  return internal::BinomialBtrs(n, p, rng);
}

}  // namespace ldp
