#include "common/binomial.h"

#include <cmath>

#include "common/check.h"

namespace ldp {

namespace internal {

namespace {

// Tail of the Stirling series for log(k!); from Hörmann (1993), as used by
// the TensorFlow implementation of BTRS.
double StirlingApproxTail(double k) {
  static const double kTailValues[] = {
      0.0810614667953272,  0.0413406959554092,  0.0276779256849983,
      0.02079067210376509, 0.0166446911898211,  0.0138761288230707,
      0.0118967099458917,  0.0104112652619720,  0.00925546218271273,
      0.00833056343336287};
  if (k <= 9) {
    return kTailValues[static_cast<int>(k)];
  }
  double kp1sq = (k + 1) * (k + 1);
  return (1.0 / 12 - (1.0 / 360 - 1.0 / 1260 / kp1sq) / kp1sq) / (k + 1);
}

}  // namespace

int64_t BinomialInversion(int64_t n, double p, Rng& rng) {
  LDP_DCHECK(p > 0.0 && p <= 0.5);
  // "Second waiting time" method: add geometric gaps until the trial budget
  // is exhausted. Expected number of loop iterations is n*p + 1.
  const double logq = std::log1p(-p);
  int64_t count = -1;
  double trials_used = 0.0;
  while (true) {
    double u = 0.0;
    do {
      u = rng.UniformDouble();
    } while (u <= 0.0);
    trials_used += std::floor(std::log(u) / logq) + 1.0;
    ++count;
    if (trials_used > static_cast<double>(n)) {
      return count;
    }
  }
}

int64_t BinomialBtrs(int64_t n, double p, Rng& rng) {
  LDP_DCHECK(p > 0.0 && p <= 0.5);
  const double nd = static_cast<double>(n);
  const double r = p / (1 - p);
  const double npq = nd * p * (1 - p);
  const double sqrt_npq = std::sqrt(npq);
  const double b = 1.15 + 2.53 * sqrt_npq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double alpha = (2.83 + 5.1 / b) * sqrt_npq;
  const double m = std::floor((nd + 1) * p);

  while (true) {
    double u = rng.UniformDouble() - 0.5;
    double v = rng.UniformDouble();
    double us = 0.5 - std::abs(u);
    double kd = std::floor((2 * a / us + b) * u + c);
    if (kd < 0 || kd > nd) {
      continue;  // target density is zero outside [0, n]
    }
    if (us >= 0.07 && v <= v_r) {
      return static_cast<int64_t>(kd);
    }
    // Slow path: full acceptance test in log space.
    v = std::log(v * alpha / (a / (us * us) + b));
    double upper =
        (m + 0.5) * std::log((m + 1) / (r * (nd - m + 1))) +
        (nd + 1) * std::log((nd - m + 1) / (nd - kd + 1)) +
        (kd + 0.5) * std::log(r * (nd - kd + 1) / (kd + 1)) +
        StirlingApproxTail(m) + StirlingApproxTail(nd - m) -
        StirlingApproxTail(kd) - StirlingApproxTail(nd - kd);
    if (v <= upper) {
      return static_cast<int64_t>(kd);
    }
  }
}

}  // namespace internal

int64_t SampleBinomial(int64_t n, double p, Rng& rng) {
  LDP_CHECK_GE(n, 0);
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - SampleBinomial(n, 1.0 - p, rng);
  if (static_cast<double>(n) * p < 10.0) {
    return internal::BinomialInversion(n, p, rng);
  }
  return internal::BinomialBtrs(n, p, rng);
}

BinomialSampler::BinomialSampler(int64_t n, double p) : n_(n), p_(p) {
  LDP_CHECK_GE(n, 0);
  if (n == 0 || p <= 0.0) {
    method_ = Method::kDegenerate;
    degenerate_ = 0;
    return;
  }
  if (p >= 1.0) {
    method_ = Method::kDegenerate;
    degenerate_ = n;
    return;
  }
  if (p > 0.5) {
    mirrored_ = true;
    p_ = 1.0 - p;
  }
  if (n <= kAliasMaxN) {
    method_ = Method::kAlias;
    BuildAlias();
    return;
  }
  const double nd = static_cast<double>(n_);
  if (nd * p_ < 10.0) {
    method_ = Method::kInversion;
    logq_ = std::log1p(-p_);
    return;
  }
  method_ = Method::kBtrs;
  const double npq = nd * p_ * (1 - p_);
  const double sqrt_npq = std::sqrt(npq);
  btrs_r_ = p_ / (1 - p_);
  btrs_b_ = 1.15 + 2.53 * sqrt_npq;
  btrs_a_ = -0.0873 + 0.0248 * btrs_b_ + 0.01 * p_;
  btrs_c_ = nd * p_ + 0.5;
  btrs_vr_ = 0.92 - 4.2 / btrs_b_;
  btrs_alpha_ = (2.83 + 5.1 / btrs_b_) * sqrt_npq;
  btrs_m_ = std::floor((nd + 1) * p_);
}

void BinomialSampler::BuildAlias() {
  const uint64_t k = static_cast<uint64_t>(n_) + 1;
  std::vector<double> pmf(k, 0.0);
  // Anchor at the mode via lgamma, then sweep outward with the one-term
  // pmf recurrence; entries that underflow double stay zero (their total
  // mass is far below the 2^-53 resolution of the acceptance draw).
  const double nd = static_cast<double>(n_);
  int64_t mode = static_cast<int64_t>(std::floor((nd + 1) * p_));
  if (mode > n_) mode = n_;
  const double log_mode_pmf =
      std::lgamma(nd + 1) - std::lgamma(static_cast<double>(mode) + 1) -
      std::lgamma(nd - static_cast<double>(mode) + 1) +
      static_cast<double>(mode) * std::log(p_) +
      (nd - static_cast<double>(mode)) * std::log1p(-p_);
  pmf[static_cast<uint64_t>(mode)] = std::exp(log_mode_pmf);
  const double odds = p_ / (1 - p_);
  for (int64_t i = mode; i < n_; ++i) {
    double next = pmf[static_cast<uint64_t>(i)] * odds * (nd - i) /
                  (static_cast<double>(i) + 1);
    pmf[static_cast<uint64_t>(i) + 1] = next;
    if (next == 0.0) break;
  }
  for (int64_t i = mode; i > 0; --i) {
    double prev = pmf[static_cast<uint64_t>(i)] * static_cast<double>(i) /
                  (odds * (nd - i + 1));
    pmf[static_cast<uint64_t>(i) - 1] = prev;
    if (prev == 0.0) break;
  }
  double total = 0.0;
  for (double v : pmf) total += v;
  LDP_CHECK(total > 0.0);
  // Vose's alias construction: every column i keeps probability accept_[i]
  // of returning i, else returns alias_[i].
  accept_.assign(k, 1.0);
  alias_.resize(k);
  std::vector<double> scaled(k);
  for (uint64_t i = 0; i < k; ++i) {
    alias_[i] = static_cast<uint32_t>(i);
    scaled[i] = pmf[i] * static_cast<double>(k) / total;
  }
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  for (uint64_t i = 0; i < k; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    accept_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are 1.0-columns up to rounding.
  for (uint32_t s : small) accept_[s] = 1.0;
  for (uint32_t l : large) accept_[l] = 1.0;
}

int64_t BinomialSampler::SampleInversion(Rng& rng) const {
  int64_t count = -1;
  double trials_used = 0.0;
  while (true) {
    double u = 0.0;
    do {
      u = rng.UniformDouble();
    } while (u <= 0.0);
    trials_used += std::floor(std::log(u) / logq_) + 1.0;
    ++count;
    if (trials_used > static_cast<double>(n_)) {
      return count;
    }
  }
}

int64_t BinomialSampler::SampleBtrs(Rng& rng) const {
  const double nd = static_cast<double>(n_);
  while (true) {
    double u = rng.UniformDouble() - 0.5;
    double v = rng.UniformDouble();
    double us = 0.5 - std::abs(u);
    double kd = std::floor((2 * btrs_a_ / us + btrs_b_) * u + btrs_c_);
    if (kd < 0 || kd > nd) {
      continue;
    }
    if (us >= 0.07 && v <= btrs_vr_) {
      return static_cast<int64_t>(kd);
    }
    v = std::log(v * btrs_alpha_ / (btrs_a_ / (us * us) + btrs_b_));
    double upper =
        (btrs_m_ + 0.5) * std::log((btrs_m_ + 1) / (btrs_r_ * (nd - btrs_m_ + 1))) +
        (nd + 1) * std::log((nd - btrs_m_ + 1) / (nd - kd + 1)) +
        (kd + 0.5) * std::log(btrs_r_ * (nd - kd + 1) / (kd + 1)) +
        internal::StirlingApproxTail(btrs_m_) +
        internal::StirlingApproxTail(nd - btrs_m_) -
        internal::StirlingApproxTail(kd) -
        internal::StirlingApproxTail(nd - kd);
    if (v <= upper) {
      return static_cast<int64_t>(kd);
    }
  }
}

int64_t BinomialSampler::Sample(Rng& rng) const {
  int64_t x;
  switch (method_) {
    case Method::kDegenerate:
      return degenerate_;
    case Method::kAlias: {
      // One 64-bit draw serves both alias decisions: the high half of
      // u * (n+1) picks the column (Lemire multiply without the rejection
      // step) and the low half — u's position inside the column's preimage
      // slice — is the accept fraction. Each introduces bias at most
      // (n+1) / 2^64 < 2^-40 for any table size we build (n <= 2^20), far
      // below the double-precision pmf rounding the table itself carries.
      // One Next() instead of two matters: the generator's state update is
      // a serial dependency chain, and at grid scale (millions of
      // empty-cell draws per Finalize) halving it halves the sampler.
      const __uint128_t m =
          static_cast<__uint128_t>(rng.Next()) * (static_cast<uint64_t>(n_) + 1);
      const uint64_t column = static_cast<uint64_t>(m >> 64);
      const double frac = static_cast<double>(
                              static_cast<int64_t>(static_cast<uint64_t>(m) >> 11)) *
                          0x1.0p-53;
      x = (frac < accept_[column]) ? static_cast<int64_t>(column)
                                   : static_cast<int64_t>(alias_[column]);
      break;
    }
    case Method::kInversion:
      x = SampleInversion(rng);
      break;
    default:
      x = SampleBtrs(rng);
      break;
  }
  return mirrored_ ? n_ - x : x;
}

}  // namespace ldp
