// Runtime CPU dispatch for hot kernels.
//
// LDP_TARGET_CLONES marks a function for GCC function multi-versioning: the
// compiler emits a baseline x86-64 version plus AVX2 and AVX-512 variants
// and picks the best one at load time via an ifunc resolver. The checked-in
// build stays portable (no -march flags leak into the global build), while
// wide-vector machines get the vectorized decode loops — on AVX-512 the
// 64-bit multiplies of the seeded hash map directly onto vpmullq, which is
// what makes the OLH support scan vectorize at all.
//
// Expands to nothing on non-x86 targets and compilers without the
// attribute (the kernels are plain portable C++ either way).

#ifndef LDPRANGE_COMMON_CPU_DISPATCH_H_
#define LDPRANGE_COMMON_CPU_DISPATCH_H_

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_ADDRESS__)
#define LDP_TARGET_CLONES \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v4")))
#else
#define LDP_TARGET_CLONES
#endif

#endif  // LDPRANGE_COMMON_CPU_DISPATCH_H_
