// Runtime CPU dispatch for hot kernels.
//
// Two complementary layers:
//
//  1. LDP_TARGET_CLONES — GCC function multi-versioning for light
//     auto-vectorized loops (debias sweeps, estimate scans): the compiler
//     emits a baseline x86-64 version plus AVX2, x86-64-v3 and x86-64-v4
//     (AVX-512F/BW/DQ/VL) variants and picks one at load time via an ifunc
//     resolver. Zero per-call overhead, but the choice is invisible and
//     cannot be overridden at runtime, and ifunc resolvers do not compose
//     with clang or AddressSanitizer — hence layer 2 for the kernels that
//     matter.
//
//  2. SimdTier — explicit manual dispatch for the heavy decode kernels
//     (the OLH support scan, the deferred multidim decode). Each kernel is
//     compiled once per tier with __attribute__((target(...))) and selected
//     through ResolvedSimdTier(), which honors the --dispatch= flag /
//     LDP_DISPATCH env override and logs the selected tier once at first
//     use:
//
//       ldp [info] simd dispatch tier=avx512 (detected=avx512, override=auto)
//
//     Tiers: scalar < avx2 < avx512 on x86-64 (on AVX-512 the 64-bit
//     multiplies of the seeded hash map directly onto vpmullq, which is
//     what makes the OLH support scan vectorize at all); neon < sve on
//     aarch64 (NEON is the aarch64 baseline, so its "variant" is the
//     portable body; an SVE tier exists when the build targets SVE).
//     An override above what the CPU supports clamps to the detected tier,
//     so the resolved tier is always safe to execute.
//
// The checked-in build stays portable: no -march flags leak into the
// global build, every variant carries its own target attribute, and
// kernels are plain portable C++ compiled per tier (no intrinsics).

#ifndef LDPRANGE_COMMON_CPU_DISPATCH_H_
#define LDPRANGE_COMMON_CPU_DISPATCH_H_

#include <span>
#include <string_view>

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_ADDRESS__)
#define LDP_TARGET_CLONES                                          \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v3", \
                               "arch=x86-64-v4")))
#else
#define LDP_TARGET_CLONES
#endif

// True when this translation unit can compile per-tier x86 variants with
// __attribute__((target(...))) — GCC and clang, any sanitizer (manual
// dispatch needs no ifunc).
#if defined(__x86_64__) && defined(__GNUC__)
#define LDP_SIMD_MANUAL_X86 1
#else
#define LDP_SIMD_MANUAL_X86 0
#endif

namespace ldp {

/// Vector-width tier a kernel variant is compiled for, in ascending order
/// within each ISA family.
enum class SimdTier : int {
  kScalar = 0,  // portable baseline (x86-64 SSE2)
  kAvx2 = 1,
  kAvx512 = 2,  // AVX-512 F/BW/DQ/VL (x86-64-v4 feature set)
  kNeon = 3,    // aarch64 baseline
  kSve = 4,
};

/// Canonical lowercase tier name ("scalar", "avx2", "avx512", "neon",
/// "sve").
std::string_view SimdTierName(SimdTier tier);

/// The tiers this binary carries kernel variants for, ascending. Always
/// contains the platform baseline.
std::span<const SimdTier> CompiledSimdTiers();

/// Best compiled tier the running CPU supports.
SimdTier DetectedSimdTier();

/// The tier kernels actually dispatch to: DetectedSimdTier() unless
/// lowered by SetSimdTierOverride() / the LDP_DISPATCH environment
/// variable. Logs one `simd dispatch` line (obs/log.h, level info,
/// silenceable via LDP_LOG_LEVEL) on first call.
SimdTier ResolvedSimdTier();

/// Overrides the dispatch tier by name ("scalar", "avx2", "avx512",
/// "neon", "sve"), or restores auto-detection with "auto". Unknown names
/// and tiers this binary has no variants for return false; a tier above
/// what the CPU supports is accepted but clamps to the detected tier.
/// Benches expose this as --dispatch=.
bool SetSimdTierOverride(std::string_view name);

}  // namespace ldp

#endif  // LDPRANGE_COMMON_CPU_DISPATCH_H_
