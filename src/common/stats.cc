#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace ldp {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double RunningStat::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStat::sample_variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::sample_stddev() const {
  return std::sqrt(sample_variance());
}

void ErrorStat::Add(double estimate, double truth) {
  double err = estimate - truth;
  squared_.Add(err * err);
  absolute_.Add(std::abs(err));
}

void ErrorStat::Merge(const ErrorStat& other) {
  squared_.Merge(other.squared_);
  absolute_.Merge(other.absolute_);
}

}  // namespace ldp
