// Deterministic, fast pseudo-random number generation.
//
// Every randomized component in the library takes an explicit Rng so that
// experiments are exactly reproducible from a single 64-bit seed. The
// generator is xoshiro256++ (Blackman & Vigna), seeded through splitmix64 so
// that small / correlated user seeds still yield well-mixed states.

#ifndef LDPRANGE_COMMON_RANDOM_H_
#define LDPRANGE_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace ldp {

/// splitmix64 single step: mixes `state` and advances it. Used for seeding
/// and for cheap stateless hashing.
uint64_t SplitMix64(uint64_t& state);

/// xoshiro256++ PRNG. Satisfies the subset of the C++ UniformRandomBitGenerator
/// concept the library needs, plus convenience samplers.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed (any value is fine, including
  /// zero: seeding goes through splitmix64).
  explicit Rng(uint64_t seed = 0xC0DE15EA5EEDULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next 64 uniformly random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). Requires bound >= 1. Unbiased
  /// (Lemire's rejection method).
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformIntInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Bernoulli trial: true with probability p (p clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index i with probability weights[i] / sum(weights).
  /// Linear scan; intended for small weight vectors (e.g. tree levels).
  size_t Discrete(const std::vector<double>& weights);

  /// Standard normal via Box–Muller (no caching; both values derived fresh).
  double Gaussian();

  /// Standard Cauchy variate (tan-based inversion).
  double Cauchy();

  /// Laplace(0, scale) variate via inverse CDF.
  double Laplace(double scale);

  /// Creates an independent child generator; useful for giving each thread
  /// or simulated user its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace ldp

#endif  // LDPRANGE_COMMON_RANDOM_H_
