// Exact binomial sampling.
//
// The paper's experimental section (§5) replaces the per-user OUE protocol by
// a statistically equivalent aggregate simulation:
//
//   theta*[j] = Bino(theta[j], 1/2) + Bino(N - theta[j], 1/(1+e^eps))
//
// which requires an exact Binomial(n, p) sampler that stays fast for n up to
// the paper's population size of 2^26. We use the classic two-regime design:
// geometric-jump inversion when n*min(p,1-p) is small and Hörmann's BTRS
// transformed-rejection algorithm otherwise (the same split used by the
// NumPy / TensorFlow samplers).

#ifndef LDPRANGE_COMMON_BINOMIAL_H_
#define LDPRANGE_COMMON_BINOMIAL_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace ldp {

/// Draws an exact Binomial(n, p) variate. Handles all edge cases
/// (p <= 0, p >= 1, n == 0) and is O(1 + n*min(p,1-p)) in the inversion
/// regime, O(1) expected in the rejection regime.
int64_t SampleBinomial(int64_t n, double p, Rng& rng);

/// Repeated draws from ONE Binomial(n, p): the aggregate-simulation hot
/// path. Finalizing a simulated OUE/SUE oracle draws the noise for every
/// empty cell from the same Bino(n, q) — millions of draws at the grid and
/// paper scales — so the per-draw setup that SampleBinomial re-derives each
/// call (BTRS constants, log(1-p)) is hoisted into the constructor, and for
/// moderate n the full pmf is precomputed into a Walker/Vose alias table:
/// ONE 64-bit draw (its high product half picks the column, its low half is
/// the accept fraction) and one table lookup per sample (~3 ns, an order of
/// magnitude under BTRS). The alias table is exact to double-precision pmf
/// rounding — the same accuracy class as BTRS's acceptance test — and the
/// single-draw split adds bias below 2^-40, well under that rounding.
///
/// The Rng stream consumed differs from SampleBinomial's; callers that pin
/// bit-exact noise streams must pick one API and keep it (the simulated
/// oracles all use this one).
class BinomialSampler {
 public:
  /// Largest n for which the alias table is built: (n+1) * 12 bytes of
  /// table, O(n) construction. Above it cached-constant BTRS/inversion
  /// still gives most of the win.
  static constexpr int64_t kAliasMaxN = int64_t{1} << 20;

  /// How draws are produced (exposed for tests).
  enum class Method { kDegenerate, kAlias, kInversion, kBtrs };

  BinomialSampler(int64_t n, double p);

  int64_t Sample(Rng& rng) const;

  Method method() const { return method_; }

 private:
  void BuildAlias();
  int64_t SampleInversion(Rng& rng) const;
  int64_t SampleBtrs(Rng& rng) const;

  int64_t n_;
  double p_;  // after mirroring: always in (0, 0.5] for non-degenerate
  bool mirrored_ = false;
  Method method_;
  int64_t degenerate_ = 0;
  // Inversion cache.
  double logq_ = 0.0;
  // BTRS caches (Hörmann's names, as in internal::BinomialBtrs).
  double btrs_r_ = 0.0, btrs_b_ = 0.0, btrs_a_ = 0.0, btrs_c_ = 0.0,
         btrs_vr_ = 0.0, btrs_alpha_ = 0.0, btrs_m_ = 0.0;
  // Alias table over [0, n].
  std::vector<double> accept_;
  std::vector<uint32_t> alias_;
};

namespace internal {

/// Geometric-jump inversion; requires 0 < p <= 0.5. Exposed for testing.
int64_t BinomialInversion(int64_t n, double p, Rng& rng);

/// Hörmann's BTRS; requires 0 < p <= 0.5 and n * p >= 10. Exposed for
/// testing.
int64_t BinomialBtrs(int64_t n, double p, Rng& rng);

}  // namespace internal

}  // namespace ldp

#endif  // LDPRANGE_COMMON_BINOMIAL_H_
