// Exact binomial sampling.
//
// The paper's experimental section (§5) replaces the per-user OUE protocol by
// a statistically equivalent aggregate simulation:
//
//   theta*[j] = Bino(theta[j], 1/2) + Bino(N - theta[j], 1/(1+e^eps))
//
// which requires an exact Binomial(n, p) sampler that stays fast for n up to
// the paper's population size of 2^26. We use the classic two-regime design:
// geometric-jump inversion when n*min(p,1-p) is small and Hörmann's BTRS
// transformed-rejection algorithm otherwise (the same split used by the
// NumPy / TensorFlow samplers).

#ifndef LDPRANGE_COMMON_BINOMIAL_H_
#define LDPRANGE_COMMON_BINOMIAL_H_

#include <cstdint>

#include "common/random.h"

namespace ldp {

/// Draws an exact Binomial(n, p) variate. Handles all edge cases
/// (p <= 0, p >= 1, n == 0) and is O(1 + n*min(p,1-p)) in the inversion
/// regime, O(1) expected in the rejection regime.
int64_t SampleBinomial(int64_t n, double p, Rng& rng);

namespace internal {

/// Geometric-jump inversion; requires 0 < p <= 0.5. Exposed for testing.
int64_t BinomialInversion(int64_t n, double p, Rng& rng);

/// Hörmann's BTRS; requires 0 < p <= 0.5 and n * p >= 10. Exposed for
/// testing.
int64_t BinomialBtrs(int64_t n, double p, Rng& rng);

}  // namespace internal

}  // namespace ldp

#endif  // LDPRANGE_COMMON_BINOMIAL_H_
