#include "common/arena.h"

namespace ldp {

void* Arena::Allocate(size_t bytes, size_t alignment) {
  LDP_DCHECK(alignment != 0 && (alignment & (alignment - 1)) == 0);
  if (bytes == 0) bytes = 1;
  // Advance over retained blocks (after a Reset) until one fits; a block
  // big enough for any aligned request is accepted so a repeated
  // allocation sequence re-carves the same blocks with no system calls.
  while (cursor_ < blocks_.size()) {
    Block& block = blocks_[cursor_];
    uintptr_t base_addr = reinterpret_cast<uintptr_t>(block.data.get());
    size_t aligned = static_cast<size_t>(
        ((base_addr + offset_ + alignment - 1) &
         ~static_cast<uintptr_t>(alignment - 1)) -
        base_addr);
    if (aligned + bytes <= block.capacity) {
      offset_ = aligned + bytes;
      return block.data.get() + aligned;
    }
    ++cursor_;
    offset_ = 0;
  }
  // No retained block fits: grow. Oversized requests get an exact block so
  // a huge Reserve cannot poison the doubling schedule.
  size_t capacity = std::max(bytes + alignment, next_block_bytes_);
  next_block_bytes_ = std::min(next_block_bytes_ * 2, kMaxBlockBytes);
  Block block;
  block.data = std::make_unique<std::byte[]>(capacity);
  block.capacity = capacity;
  bytes_reserved_ += capacity;
  ++block_allocations_;
  blocks_.push_back(std::move(block));
  cursor_ = blocks_.size() - 1;
  std::byte* base = blocks_[cursor_].data.get();
  // operator new storage is suitably aligned for every fundamental type;
  // the fixup below only matters for over-aligned requests.
  uintptr_t base_addr = reinterpret_cast<uintptr_t>(base);
  uintptr_t aligned_addr =
      (base_addr + alignment - 1) & ~static_cast<uintptr_t>(alignment - 1);
  size_t aligned = static_cast<size_t>(aligned_addr - base_addr);
  offset_ = aligned + bytes;
  return base + aligned;
}

void Arena::Reset() {
  cursor_ = 0;
  offset_ = 0;
}

void Arena::AdoptBlocks(Arena&& other) {
  if (other.blocks_.empty()) {
    other.Reset();
    return;
  }
  // The adopted blocks hold live data, so they must sit in the consumed
  // prefix [0, cursor_); they become reusable after the next Reset().
  blocks_.insert(blocks_.begin() + static_cast<ptrdiff_t>(cursor_),
                 std::make_move_iterator(other.blocks_.begin()),
                 std::make_move_iterator(other.blocks_.end()));
  cursor_ += other.blocks_.size();
  bytes_reserved_ += other.bytes_reserved_;
  block_allocations_ += other.block_allocations_;
  other.blocks_.clear();
  other.cursor_ = 0;
  other.offset_ = 0;
  other.bytes_reserved_ = 0;
  other.block_allocations_ = 0;
}

}  // namespace ldp
