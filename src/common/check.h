// Lightweight assertion macros for precondition and invariant checking.
//
// The library does not use C++ exceptions (following the Google style the
// project adopts); violated preconditions are programmer errors and abort the
// process with a diagnostic. LDP_CHECK* are always on; LDP_DCHECK* compile to
// no-ops in NDEBUG builds and are used on hot paths.

#ifndef LDPRANGE_COMMON_CHECK_H_
#define LDPRANGE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ldp::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "LDP_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] != '\0' ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace ldp::internal

/// Aborts with a diagnostic unless `cond` holds. Always enabled.
#define LDP_CHECK(cond)                                               \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::ldp::internal::CheckFailed(__FILE__, __LINE__, #cond, "");    \
    }                                                                 \
  } while (false)

/// LDP_CHECK with an explanatory message (a string literal).
#define LDP_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::ldp::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                 \
  } while (false)

#define LDP_CHECK_EQ(a, b) LDP_CHECK((a) == (b))
#define LDP_CHECK_NE(a, b) LDP_CHECK((a) != (b))
#define LDP_CHECK_LT(a, b) LDP_CHECK((a) < (b))
#define LDP_CHECK_LE(a, b) LDP_CHECK((a) <= (b))
#define LDP_CHECK_GT(a, b) LDP_CHECK((a) > (b))
#define LDP_CHECK_GE(a, b) LDP_CHECK((a) >= (b))

#ifdef NDEBUG
#define LDP_DCHECK(cond) \
  do {                   \
  } while (false)
#else
#define LDP_DCHECK(cond) LDP_CHECK(cond)
#endif

#define LDP_DCHECK_LT(a, b) LDP_DCHECK((a) < (b))
#define LDP_DCHECK_LE(a, b) LDP_DCHECK((a) <= (b))
#define LDP_DCHECK_GE(a, b) LDP_DCHECK((a) >= (b))

#endif  // LDPRANGE_COMMON_CHECK_H_
