#include "common/parallel.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/log.h"

#if defined(__linux__)
#include <dirent.h>
#include <pthread.h>
#include <sched.h>
#endif

namespace ldp {

unsigned HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

namespace internal {

std::vector<unsigned> ParseCpuList(const std::string& text) {
  std::vector<unsigned> cpus;
  size_t i = 0;
  const size_t size = text.size();
  auto skip_space = [&] {
    while (i < size && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };
  auto parse_number = [&](unsigned* out) {
    skip_space();
    if (i >= size || !std::isdigit(static_cast<unsigned char>(text[i]))) {
      return false;
    }
    unsigned value = 0;
    while (i < size && std::isdigit(static_cast<unsigned char>(text[i]))) {
      value = value * 10 + static_cast<unsigned>(text[i] - '0');
      ++i;
    }
    *out = value;
    return true;
  };
  while (i < size) {
    unsigned lo = 0;
    if (!parse_number(&lo)) break;
    unsigned hi = lo;
    skip_space();
    if (i < size && text[i] == '-') {
      ++i;
      if (!parse_number(&hi)) break;
    }
    // Skip inverted ranges rather than guessing; cap a runaway range so a
    // corrupt file cannot balloon the vector.
    constexpr unsigned kMaxSpan = 1u << 16;
    if (hi >= lo && hi - lo < kMaxSpan) {
      for (unsigned c = lo; c <= hi; ++c) cpus.push_back(c);
    }
    skip_space();
    if (i < size && text[i] == ',') ++i;
  }
  return cpus;
}

namespace {

NumaTopology SingleNodeFallback() {
  NumaTopology topology;
  NumaNode node;
  node.id = 0;
  for (unsigned c = 0; c < HardwareThreads(); ++c) node.cpus.push_back(c);
  topology.nodes.push_back(std::move(node));
  topology.pinning_enabled = false;
  return topology;
}

}  // namespace

NumaTopology ReadSysfsTopology() {
#if defined(__linux__)
  NumaTopology topology;
  DIR* dir = opendir("/sys/devices/system/node");
  if (dir != nullptr) {
    while (dirent* entry = readdir(dir)) {
      const std::string name = entry->d_name;
      if (name.rfind("node", 0) != 0 || name.size() <= 4) continue;
      bool numeric = true;
      for (size_t i = 4; i < name.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
          numeric = false;
          break;
        }
      }
      if (!numeric) continue;
      std::ifstream cpulist("/sys/devices/system/node/" + name + "/cpulist");
      if (!cpulist) continue;
      std::stringstream buffer;
      buffer << cpulist.rdbuf();
      NumaNode node;
      node.id = std::atoi(name.c_str() + 4);
      node.cpus = ParseCpuList(buffer.str());
      if (!node.cpus.empty()) topology.nodes.push_back(std::move(node));
    }
    closedir(dir);
  }
  if (topology.nodes.empty()) return SingleNodeFallback();
  std::sort(topology.nodes.begin(), topology.nodes.end(),
            [](const NumaNode& a, const NumaNode& b) { return a.id < b.id; });
  topology.pinning_enabled = topology.nodes.size() > 1;
  return topology;
#else
  return SingleNodeFallback();
#endif
}

NumaTopology ApplyNumaMode(NumaTopology topology, const std::string& mode) {
  if (mode == "single") {
    // Graceful single-node fallback, forced: merge every CPU into node 0.
    NumaNode merged;
    merged.id = 0;
    for (const NumaNode& node : topology.nodes) {
      merged.cpus.insert(merged.cpus.end(), node.cpus.begin(),
                         node.cpus.end());
    }
    std::sort(merged.cpus.begin(), merged.cpus.end());
    topology.nodes.clear();
    topology.nodes.push_back(std::move(merged));
    topology.pinning_enabled = false;
    return topology;
  }
  if (mode == "off") {
    topology.pinning_enabled = false;
    return topology;
  }
  // "", "auto", or anything unrecognized: keep the detected layout.
  topology.pinning_enabled = topology.multi_node();
  return topology;
}

void PinThreadToCpus(const std::vector<unsigned>& cpus) {
#if defined(__linux__)
  if (cpus.empty()) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (unsigned c : cpus) {
    if (c < CPU_SETSIZE) {
      CPU_SET(c, &set);
      any = true;
    }
  }
  if (!any) return;
  // Best effort: a denied affinity call (cgroup restrictions, shrunk
  // cpuset) leaves the worker unpinned, never fails the computation.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpus;
#endif
}

}  // namespace internal

const NumaTopology& SystemNumaTopology() {
  static const NumaTopology topology = [] {
    const char* env = std::getenv("LDP_NUMA");
    NumaTopology detected = internal::ApplyNumaMode(
        internal::ReadSysfsTopology(), env == nullptr ? "" : env);
    size_t cpus = 0;
    for (const NumaNode& node : detected.nodes) cpus += node.cpus.size();
    LDP_LOG_INFO("numa topology nodes=%zu cpus=%zu pinning=%s (LDP_NUMA=%s)",
                 detected.nodes.size(), cpus,
                 detected.pinning_enabled ? "on" : "off",
                 env == nullptr ? "auto" : env);
    return detected;
  }();
  return topology;
}

void ParallelFor(uint64_t total, unsigned num_threads,
                 const std::function<void(unsigned, uint64_t, uint64_t)>& body) {
  if (total == 0) return;
  unsigned chunks = std::max(1u, num_threads);
  chunks = static_cast<unsigned>(
      std::min<uint64_t>(chunks, total));
  if (chunks == 1) {
    body(0, 0, total);
    return;
  }
  uint64_t per = total / chunks;
  uint64_t rem = total % chunks;
  const NumaTopology& topology = SystemNumaTopology();
  const bool pin = topology.pinning_enabled && !topology.nodes.empty();
  std::vector<std::thread> workers;
  workers.reserve(chunks);
  uint64_t begin = 0;
  for (unsigned c = 0; c < chunks; ++c) {
    uint64_t len = per + (c < rem ? 1 : 0);
    uint64_t end = begin + len;
    workers.emplace_back([&body, &topology, pin, c, begin, end] {
      if (pin) {
        // Round-robin chunk -> node: stable for a fixed chunk count, so a
        // chunk's accumulator pages (first-touched inside the body) stay on
        // the node that fills and later scans them. Placement never alters
        // the chunk assignment itself, keeping results bit-identical to
        // unpinned runs.
        const NumaNode& node = topology.nodes[c % topology.nodes.size()];
        internal::PinThreadToCpus(node.cpus);
      }
      body(c, begin, end);
    });
    begin = end;
  }
  for (std::thread& t : workers) {
    t.join();
  }
}

}  // namespace ldp
