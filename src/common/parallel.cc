#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace ldp {

unsigned HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ParallelFor(uint64_t total, unsigned num_threads,
                 const std::function<void(unsigned, uint64_t, uint64_t)>& body) {
  if (total == 0) return;
  unsigned chunks = std::max(1u, num_threads);
  chunks = static_cast<unsigned>(
      std::min<uint64_t>(chunks, total));
  if (chunks == 1) {
    body(0, 0, total);
    return;
  }
  uint64_t per = total / chunks;
  uint64_t rem = total % chunks;
  std::vector<std::thread> workers;
  workers.reserve(chunks);
  uint64_t begin = 0;
  for (unsigned c = 0; c < chunks; ++c) {
    uint64_t len = per + (c < rem ? 1 : 0);
    uint64_t end = begin + len;
    workers.emplace_back([&body, c, begin, end] { body(c, begin, end); });
    begin = end;
  }
  for (std::thread& t : workers) {
    t.join();
  }
}

}  // namespace ldp
