// Seeded hash family for Optimal Local Hashing (OLH).
//
// OLH (Wang et al., USENIX Security 2017; paper Section 3.2) needs each user
// to sample a hash function H : [D] -> [g] uniformly at random from a
// universal family. We index the family by a 64-bit seed and hash through a
// strong 64-bit mixer followed by an unbiased range reduction, which gives
// collision behavior indistinguishable from uniform for the domain sizes in
// the paper (tests verify the 1/g collision bound empirically).

#ifndef LDPRANGE_COMMON_HASH_H_
#define LDPRANGE_COMMON_HASH_H_

#include <cstdint>

namespace ldp {

/// One member of the seeded hash family: maps x to [0, range).
uint64_t SeededHash(uint64_t seed, uint64_t x, uint64_t range);

/// Stateless 64 -> 64 bit mixer (splitmix64 finalizer). Building block for
/// SeededHash; exposed for tests.
uint64_t Mix64(uint64_t x);

}  // namespace ldp

#endif  // LDPRANGE_COMMON_HASH_H_
