// Streaming statistics accumulators used throughout the evaluation harness.

#ifndef LDPRANGE_COMMON_STATS_H_
#define LDPRANGE_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>

namespace ldp {

/// Numerically stable streaming mean / variance (Welford's algorithm) with
/// min/max tracking.
class RunningStat {
 public:
  RunningStat() = default;

  /// Folds one observation into the accumulator.
  void Add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStat& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const;
  /// Sample variance (divides by n-1); 0 for fewer than two observations.
  double sample_variance() const;
  double stddev() const;
  double sample_stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Accumulates squared / absolute error between estimates and ground truth.
class ErrorStat {
 public:
  ErrorStat() = default;

  /// Records one (estimate, truth) pair.
  void Add(double estimate, double truth);

  void Merge(const ErrorStat& other);

  int64_t count() const { return squared_.count(); }
  double mse() const { return squared_.mean(); }
  double mae() const { return absolute_.mean(); }
  double max_abs_error() const { return absolute_.max(); }

 private:
  RunningStat squared_;
  RunningStat absolute_;
};

}  // namespace ldp

#endif  // LDPRANGE_COMMON_STATS_H_
