// Arena allocation for report buffers.
//
// The ingestion hot path appends millions of small fixed-size records
// (pending OLH reports, deferred multidim grid records) into per-shard
// buffers that are later scanned once and thrown away. std::vector is the
// wrong tool twice over: geometric growth re-copies every record already
// ingested (O(N) extra traffic per session), and clear() hands the pages
// back so the next session pays the page faults again. An arena fixes both:
//
//   * Arena       — a bump allocator over a chain of geometrically growing
//                   blocks. Allocation never moves existing bytes; Reset()
//                   retains the blocks so a reused arena reaches steady
//                   state with zero further system allocations.
//   * ArenaColumn — a typed append-only column on its own arena: push_back
//                   into the current chunk, chunk-at-a-time iteration for
//                   the decode kernels, and O(1) Adopt() so the sharded
//                   clone/merge contract splices shard buffers instead of
//                   copying them.
//
// NUMA note: chunks are first touched by the thread that appends into them
// (ParallelFor workers each own a shard column), so on multi-node machines
// the records live on the node that will usually scan them.
//
// Neither class is thread-safe; one writer per arena, the same contract as
// the oracles they back.

#ifndef LDPRANGE_COMMON_ARENA_H_
#define LDPRANGE_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ldp {

/// Chained bump allocator. All memory is released at destruction; Reset()
/// rewinds the cursor but keeps every block for reuse.
class Arena {
 public:
  /// First block size; later blocks double up to kMaxBlockBytes.
  static constexpr size_t kDefaultFirstBlockBytes = size_t{1} << 16;
  static constexpr size_t kMaxBlockBytes = size_t{1} << 24;

  explicit Arena(size_t first_block_bytes = kDefaultFirstBlockBytes)
      : next_block_bytes_(first_block_bytes == 0 ? kDefaultFirstBlockBytes
                                                 : first_block_bytes) {}

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `alignment` (a power of two).
  /// Never relocates previous allocations.
  void* Allocate(size_t bytes, size_t alignment);

  /// Rewinds to empty while retaining every block: the next allocation
  /// sequence re-carves the same memory with no system allocation (the
  /// session-reuse fast path).
  void Reset();

  /// Takes ownership of `other`'s blocks without touching their contents —
  /// pointers into `other` stay valid and are now kept alive by this arena.
  /// The adopted blocks are treated as fully consumed (they become
  /// available for reuse only after Reset()). `other` is left empty.
  void AdoptBlocks(Arena&& other);

  /// Total capacity of all blocks owned by this arena.
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// Number of blocks ever requested from the system allocator — including
  /// by arenas later adopted into this one. Flat across Reset()/re-fill
  /// cycles once steady state is reached; the zero-copy tests assert on it.
  uint64_t block_allocations() const { return block_allocations_; }

  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
  };

  // Blocks [0, cursor_) are consumed; cursor_ is the block being bumped.
  std::vector<Block> blocks_;
  size_t cursor_ = 0;
  size_t offset_ = 0;
  size_t next_block_bytes_;
  size_t bytes_reserved_ = 0;
  uint64_t block_allocations_ = 0;
};

/// Append-only typed column over a private Arena. The element sequence is
/// stored as a list of contiguous chunks whose element-count boundaries
/// follow a fixed schedule (kFirstChunkElems doubling to kMaxChunkElems),
/// so two columns driven by the same append sequence have identical chunk
/// boundaries — the pairing the structure-of-arrays decode kernels rely on.
template <typename T>
class ArenaColumn {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(std::is_trivially_destructible_v<T>);

 public:
  static constexpr uint64_t kFirstChunkElems = 1024;
  static constexpr uint64_t kMaxChunkElems = uint64_t{1} << 20;

  /// One contiguous run of elements, for chunk-at-a-time kernels.
  struct Chunk {
    const T* data;
    uint64_t size;
  };

  ArenaColumn() = default;
  ArenaColumn(ArenaColumn&&) = default;
  ArenaColumn& operator=(ArenaColumn&&) = default;

  void PushBack(const T& value) {
    if (tail_size_ == tail_capacity_) Grow();
    tail_[tail_size_++] = value;
  }

  void Append(const T* values, uint64_t count) {
    while (count > 0) {
      if (tail_size_ == tail_capacity_) Grow();
      uint64_t take = std::min(count, tail_capacity_ - tail_size_);
      std::memcpy(tail_ + tail_size_, values, take * sizeof(T));
      tail_size_ += take;
      values += take;
      count -= take;
    }
  }

  uint64_t size() const { return sealed_elems_ + tail_size_; }
  bool empty() const { return size() == 0; }

  /// Growth hint: makes the next chunk large enough for `expected` more
  /// elements (clamped to kMaxChunkElems), so long pre-sized ingests skip
  /// the doubling ramp. Existing chunk boundaries are unaffected.
  void Reserve(uint64_t expected) {
    uint64_t room = tail_capacity_ - tail_size_;
    if (expected <= room) return;
    uint64_t want = std::min(expected - room, kMaxChunkElems);
    if (want > next_chunk_elems_) next_chunk_elems_ = want;
  }

  /// Empties the column but keeps the arena blocks: a refill of the same
  /// shape performs no system allocations (see Arena::Reset()).
  void Clear() {
    sealed_.clear();
    sealed_elems_ = 0;
    tail_ = nullptr;
    tail_size_ = 0;
    tail_capacity_ = 0;
    next_chunk_elems_ = kFirstChunkElems;
    arena_.Reset();
  }

  /// Splices `other`'s elements after this column's, O(1) in the element
  /// count: chunk descriptors and arena blocks move, bytes do not. `other`
  /// is left empty (its retained blocks move too — reuse continues here).
  void Adopt(ArenaColumn&& other) {
    SealTail();
    other.SealTail();
    if (sealed_.empty()) {
      sealed_ = std::move(other.sealed_);
    } else {
      sealed_.insert(sealed_.end(), other.sealed_.begin(), other.sealed_.end());
    }
    sealed_elems_ += other.sealed_elems_;
    arena_.AdoptBlocks(std::move(other.arena_));
    other.sealed_.clear();
    other.sealed_elems_ = 0;
    other.next_chunk_elems_ = kFirstChunkElems;
  }

  /// Invokes fn(chunk) over every chunk in element order.
  template <typename Fn>
  void ForEachChunk(Fn&& fn) const {
    for (const Chunk& c : sealed_) fn(c);
    if (tail_size_ > 0) fn(Chunk{tail_, tail_size_});
  }

  /// Chunk list including the open tail; boundary indices are identical
  /// across columns driven by the same append sequence.
  std::vector<Chunk> Chunks() const {
    std::vector<Chunk> out(sealed_.begin(), sealed_.end());
    if (tail_size_ > 0) out.push_back(Chunk{tail_, tail_size_});
    return out;
  }

  /// System allocations ever made for this column (test hook; see
  /// Arena::block_allocations()).
  uint64_t allocation_count() const { return arena_.block_allocations(); }

 private:
  void SealTail() {
    if (tail_size_ > 0) {
      sealed_.push_back(Chunk{tail_, tail_size_});
      sealed_elems_ += tail_size_;
    }
    tail_ = nullptr;
    tail_size_ = 0;
    tail_capacity_ = 0;
  }

  void Grow() {
    SealTail();
    uint64_t elems = next_chunk_elems_;
    tail_ = static_cast<T*>(arena_.Allocate(elems * sizeof(T), alignof(T)));
    tail_capacity_ = elems;
    tail_size_ = 0;
    next_chunk_elems_ = std::min(elems * 2, kMaxChunkElems);
  }

  Arena arena_;
  std::vector<Chunk> sealed_;
  uint64_t sealed_elems_ = 0;
  T* tail_ = nullptr;
  uint64_t tail_size_ = 0;
  uint64_t tail_capacity_ = 0;
  uint64_t next_chunk_elems_ = kFirstChunkElems;
};

}  // namespace ldp

#endif  // LDPRANGE_COMMON_ARENA_H_
