#include "common/random.h"

#include <cmath>
#include <numbers>

namespace ldp {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : s_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  LDP_DCHECK(bound >= 1);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformIntInRange(int64_t lo, int64_t hi) {
  LDP_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  LDP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    LDP_DCHECK(w >= 0.0);
    total += w;
  }
  LDP_CHECK(total > 0.0);
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // guard against floating-point drift
}

double Rng::Gaussian() {
  // Box–Muller; u1 kept away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Cauchy() {
  // Inverse CDF: tan(pi * (u - 1/2)). Avoid u == 1/2 exactly mattering; tan
  // handles it, but keep u in the open interval to dodge infinities.
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 1e-300 || u >= 1.0 - 1e-16);
  return std::tan(std::numbers::pi * (u - 0.5));
}

double Rng::Laplace(double scale) {
  LDP_CHECK(scale > 0.0);
  double u = UniformDouble() - 0.5;
  double magnitude = -std::log(1.0 - 2.0 * std::abs(u) + 1e-300);
  return (u < 0 ? -scale : scale) * magnitude;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace ldp
