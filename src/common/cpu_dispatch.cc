#include "common/cpu_dispatch.h"

#include <array>
#include <cstdlib>
#include <mutex>

#include "obs/log.h"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_SVE
#define HWCAP_SVE (1 << 22)
#endif
#endif

namespace ldp {

namespace {

// Override state, guarded by g_mu. The override is process-global: the
// kernels it steers are stateless, so flipping it between calls is safe
// (the equivalence tests do exactly that).
std::mutex g_mu;
bool g_override_active = false;
SimdTier g_override_tier = SimdTier::kScalar;
bool g_env_checked = false;
bool g_logged = false;

bool ParseTier(std::string_view name, SimdTier* tier) {
  if (name == "scalar") *tier = SimdTier::kScalar;
  else if (name == "avx2") *tier = SimdTier::kAvx2;
  else if (name == "avx512") *tier = SimdTier::kAvx512;
  else if (name == "neon") *tier = SimdTier::kNeon;
  else if (name == "sve") *tier = SimdTier::kSve;
  else return false;
  return true;
}

bool TierCompiled(SimdTier tier) {
  for (SimdTier t : CompiledSimdTiers()) {
    if (t == tier) return true;
  }
  return false;
}

// Clamp an override to what the CPU can execute, staying within the
// compiled set (tier enumerators ascend within each ISA family).
SimdTier ClampToDetected(SimdTier tier) {
  SimdTier detected = DetectedSimdTier();
  return static_cast<int>(tier) > static_cast<int>(detected) ? detected
                                                             : tier;
}

// Applies LDP_DISPATCH once, before the first resolution, unless an
// explicit SetSimdTierOverride already won.
void ApplyEnvOverrideLocked() {
  if (g_env_checked) return;
  g_env_checked = true;
  if (g_override_active) return;
  const char* env = std::getenv("LDP_DISPATCH");
  if (env == nullptr || env[0] == '\0') return;
  std::string_view name(env);
  if (name == "auto") return;
  SimdTier tier;
  if (!ParseTier(name, &tier) || !TierCompiled(tier)) {
    LDP_LOG_WARN("ignoring unknown LDP_DISPATCH=%s", env);
    return;
  }
  g_override_active = true;
  g_override_tier = tier;
}

}  // namespace

std::string_view SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kAvx2: return "avx2";
    case SimdTier::kAvx512: return "avx512";
    case SimdTier::kNeon: return "neon";
    case SimdTier::kSve: return "sve";
  }
  return "scalar";
}

std::span<const SimdTier> CompiledSimdTiers() {
#if LDP_SIMD_MANUAL_X86
  static constexpr std::array<SimdTier, 3> kTiers = {
      SimdTier::kScalar, SimdTier::kAvx2, SimdTier::kAvx512};
#elif defined(__aarch64__) && defined(__ARM_FEATURE_SVE)
  // The whole build targets SVE, so the portable bodies vectorize to SVE;
  // NEON remains selectable as the narrower tier.
  static constexpr std::array<SimdTier, 2> kTiers = {SimdTier::kNeon,
                                                     SimdTier::kSve};
#elif defined(__aarch64__)
  // NEON is the aarch64 baseline: the portable bodies are NEON code.
  static constexpr std::array<SimdTier, 1> kTiers = {SimdTier::kNeon};
#else
  static constexpr std::array<SimdTier, 1> kTiers = {SimdTier::kScalar};
#endif
  return kTiers;
}

SimdTier DetectedSimdTier() {
#if LDP_SIMD_MANUAL_X86
  static const SimdTier tier = [] {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl")) {
      return SimdTier::kAvx512;
    }
    if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
    return SimdTier::kScalar;
  }();
  return tier;
#elif defined(__aarch64__)
#if defined(__ARM_FEATURE_SVE) && defined(__linux__)
  static const SimdTier tier = (getauxval(AT_HWCAP) & HWCAP_SVE)
                                   ? SimdTier::kSve
                                   : SimdTier::kNeon;
  return tier;
#else
  return SimdTier::kNeon;
#endif
#else
  return SimdTier::kScalar;
#endif
}

SimdTier ResolvedSimdTier() {
  std::lock_guard<std::mutex> lock(g_mu);
  ApplyEnvOverrideLocked();
  SimdTier resolved = g_override_active ? ClampToDetected(g_override_tier)
                                        : DetectedSimdTier();
  if (!g_logged) {
    g_logged = true;
    LDP_LOG_INFO("simd dispatch tier=%s (detected=%s, override=%s)",
                 SimdTierName(resolved).data(),
                 SimdTierName(DetectedSimdTier()).data(),
                 g_override_active ? SimdTierName(g_override_tier).data()
                                   : "auto");
  }
  return resolved;
}

bool SetSimdTierOverride(std::string_view name) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_env_checked = true;  // an explicit override outranks the environment
  if (name == "auto") {
    g_override_active = false;
    return true;
  }
  SimdTier tier;
  if (!ParseTier(name, &tier) || !TierCompiled(tier)) return false;
  g_override_active = true;
  g_override_tier = tier;
  return true;
}

}  // namespace ldp
