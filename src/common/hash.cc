#include "common/hash.h"

#include "common/check.h"

namespace ldp {

uint64_t Mix64(uint64_t x) {
  // Golden-gamma increment first: the bare finalizer fixes 0, which would
  // leak structure for degenerate inputs.
  x += 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

uint64_t SeededHash(uint64_t seed, uint64_t x, uint64_t range) {
  LDP_DCHECK(range >= 1);
  // Two mixing rounds decorrelate seed and input; the final multiply-high
  // maps the 64-bit hash to [0, range) without modulo bias.
  uint64_t h = Mix64(x + 0x9E3779B97F4A7C15ULL * seed);
  h = Mix64(h ^ (seed + 0xD1B54A32D192ED03ULL));
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(h) * range) >> 64);
}

}  // namespace ldp
