// Minimal data-parallel helper for the experiment harness and the decode
// kernels, with NUMA-aware worker placement.
//
// Simulating millions of users is embarrassingly parallel: each worker gets a
// contiguous index chunk and an independent Rng stream forked from the trial
// seed, so results are deterministic for a fixed (seed, thread-count) pair
// and unbiased regardless of thread count.
//
// NUMA: on multi-node machines ParallelFor pins worker c to the memory node
// c % node_count before invoking the body. Pinning changes WHERE a chunk
// runs, never WHICH chunk it gets, so results stay bit-identical to the
// unpinned (and single-node) execution. Combined with the first-touch
// convention — every worker allocates and zeroes its own accumulator inside
// the body, so those pages land on the worker's node — shard state stays
// node-local through fill and scan instead of bouncing across sockets.
// Topology comes from sysfs (/sys/devices/system/node), no libnuma needed;
// anything unreadable degrades to one node covering every CPU, which
// disables pinning. Set LDP_NUMA=single to force that fallback (the ASan CI
// lane does) or LDP_NUMA=off to disable pinning while keeping the detected
// topology visible.

#ifndef LDPRANGE_COMMON_PARALLEL_H_
#define LDPRANGE_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ldp {

/// Number of hardware threads (>= 1).
unsigned HardwareThreads();

/// One NUMA memory node and the CPUs local to it.
struct NumaNode {
  int id = 0;
  std::vector<unsigned> cpus;
};

/// The machine's memory-node layout as placement decisions see it.
struct NumaTopology {
  std::vector<NumaNode> nodes;
  /// False when pinning is pointless (one node) or disabled (LDP_NUMA).
  bool pinning_enabled = false;

  bool multi_node() const { return nodes.size() > 1; }
};

/// The topology ParallelFor places workers with: sysfs, read once per
/// process, after applying the LDP_NUMA override ("single" collapses to
/// one node, "off" keeps the layout but disables pinning).
const NumaTopology& SystemNumaTopology();

/// Splits [0, total) into at most `num_threads` contiguous chunks and invokes
/// `body(chunk_index, begin, end)` on each from its own thread, pinned to a
/// NUMA node on multi-node machines (see file comment). Runs inline when a
/// single chunk suffices. `body` must be safe to call concurrently on
/// disjoint chunks.
void ParallelFor(uint64_t total, unsigned num_threads,
                 const std::function<void(unsigned, uint64_t, uint64_t)>& body);

namespace internal {

/// Parses a sysfs cpulist ("0-3,7,9-10") into CPU ids. Malformed ranges
/// are skipped; whitespace is tolerated. Exposed for testing.
std::vector<unsigned> ParseCpuList(const std::string& text);

/// Reads /sys/devices/system/node; falls back to one node covering every
/// hardware thread when sysfs is absent. Exposed for testing.
NumaTopology ReadSysfsTopology();

/// Applies an LDP_NUMA mode ("", "auto", "off", "single") to a raw
/// topology, returning what SystemNumaTopology would cache. Exposed for
/// testing the fallback paths on single-node machines.
NumaTopology ApplyNumaMode(NumaTopology topology, const std::string& mode);

/// Best-effort affinity pin of the calling thread; no-op on failure or for
/// an empty set. Exposed for testing.
void PinThreadToCpus(const std::vector<unsigned>& cpus);

}  // namespace internal

}  // namespace ldp

#endif  // LDPRANGE_COMMON_PARALLEL_H_
