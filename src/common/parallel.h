// Minimal data-parallel helper for the experiment harness.
//
// Simulating millions of users is embarrassingly parallel: each worker gets a
// contiguous index chunk and an independent Rng stream forked from the trial
// seed, so results are deterministic for a fixed (seed, thread-count) pair
// and unbiased regardless of thread count.

#ifndef LDPRANGE_COMMON_PARALLEL_H_
#define LDPRANGE_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace ldp {

/// Number of hardware threads (>= 1).
unsigned HardwareThreads();

/// Splits [0, total) into at most `num_threads` contiguous chunks and invokes
/// `body(chunk_index, begin, end)` on each from its own thread. Runs inline
/// when a single chunk suffices. `body` must be safe to call concurrently on
/// disjoint chunks.
void ParallelFor(uint64_t total, unsigned num_threads,
                 const std::function<void(unsigned, uint64_t, uint64_t)>& body);

}  // namespace ldp

#endif  // LDPRANGE_COMMON_PARALLEL_H_
