// Common interface for local-differentially-private frequency oracles
// (paper Section 3.2).
//
// A frequency oracle is a protocol between N users, each holding a private
// value in [0, D), and an untrusted aggregator that wants an unbiased
// estimate of the value distribution. The library simulates both sides in
// one object: SubmitValue() performs the *client-side* randomization (the
// only place the private value is touched) and immediately folds the noisy
// report into the aggregator state, so reports never need to be
// materialized when simulating millions of users. Every oracle guarantees
// eps-LDP: for any two inputs, the probability of any report differs by at
// most a factor e^eps.
//
// All oracles implemented here (OUE, OLH, HRR — the paper's three
// representative mechanisms — plus GRR) share the asymptotic per-item
// estimation variance V_F = 4 e^eps / (N (e^eps - 1)^2).

#ifndef LDPRANGE_FREQUENCY_FREQUENCY_ORACLE_H_
#define LDPRANGE_FREQUENCY_FREQUENCY_ORACLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"

namespace ldp {

/// The paper's shared variance bound V_F = 4 e^eps / (N (e^eps - 1)^2) for a
/// frequency oracle run over `n` users at privacy level `eps`.
double OracleVariance(double eps, double n);

/// HRR's exact per-item estimator variance (e^eps + 1)^2 / (N (e^eps-1)^2).
/// Slightly above V_F because each user also samples *which* Hadamard
/// coefficient to report (a multinomial term the paper's per-report
/// analysis folds into its O(.) bound); the two coincide as eps -> 0 and
/// differ by (e^eps+1)^2 / (4 e^eps) (about 1.33x at the paper's default
/// eps = 1.1).
double HrrExactVariance(double eps, double n);

/// Identifies a concrete oracle implementation; see MakeOracle().
enum class OracleKind {
  kGrr,           // generalized randomized response (k-RR)
  kOue,           // optimized unary encoding, exact per-user bit flips
  kOueSimulated,  // OUE with the paper's binomial aggregate shortcut (§5)
  kOlh,           // optimal local hashing
  kHrr,           // Hadamard randomized response
  kSue,           // symmetric unary encoding (basic RAPPOR), exact
  kSueSimulated,  // SUE with the binomial aggregate shortcut
};

/// Human-readable oracle name ("OUE", "HRR", ...).
std::string OracleKindName(OracleKind kind);

/// Abstract frequency oracle: client-side randomizer + server-side
/// aggregator state + unbiased decoder.
class FrequencyOracle {
 public:
  virtual ~FrequencyOracle() = default;

  FrequencyOracle(const FrequencyOracle&) = delete;
  FrequencyOracle& operator=(const FrequencyOracle&) = delete;

  /// Domain size D this oracle instance was built for.
  uint64_t domain_size() const { return domain_; }

  /// Privacy parameter eps.
  double epsilon() const { return eps_; }

  /// Number of user reports absorbed so far.
  uint64_t report_count() const { return reports_; }

  /// Approximate size of one user report in bits (communication cost).
  virtual double ReportBits() const = 0;

  /// Exact (or tight) variance of one entry of EstimateFractions() for a
  /// low-frequency item, given the reports absorbed so far. The basis of
  /// the mechanisms' uncertainty quantification; returns +inf before any
  /// report arrives.
  virtual double EstimatorVariance() const = 0;

  /// Whether SubmitSignedValue is supported (needed by HaarHRR, where the
  /// one-hot user vector carries a -1/+1 weight).
  virtual bool SupportsSignedValues() const { return false; }

  /// Client-side randomization of `value` in [0, D), folded into the
  /// aggregate. `rng` models the user's private coin flips.
  virtual void SubmitValue(uint64_t value, Rng& rng) = 0;

  /// Batched ingestion: submits `values` in order, drawing from `rng`
  /// exactly as the equivalent SubmitValue loop would (the two paths are
  /// bit-identical for the same Rng stream). Hot oracles override this to
  /// skip per-report virtual dispatch and amortize bookkeeping.
  virtual void SubmitBatch(std::span<const uint64_t> values, Rng& rng);

  /// Hint that about `expected` further reports will arrive; oracles with
  /// per-report storage (e.g. deferred OLH) reserve it up front. No-op by
  /// default.
  virtual void ReserveReports(uint64_t expected);

  /// Signed variant: the user's true vector is sign * e_value with sign in
  /// {-1, +1}. Only supported when SupportsSignedValues().
  virtual void SubmitSignedValue(uint64_t value, int sign, Rng& rng);

  /// One-time hook run after all users have submitted, before estimation
  /// (e.g. the simulated-OUE path draws its binomial aggregate here).
  virtual void Finalize(Rng& rng);

  /// Unbiased estimates of the fraction of reporting users holding each
  /// item. Entries may be negative or exceed 1 (no projection is applied:
  /// the range mechanisms rely on unbiasedness, and HH applies its own
  /// least-squares post-processing).
  virtual std::vector<double> EstimateFractions() const = 0;

  /// Fresh oracle with identical parameters and empty aggregate state
  /// (per-thread sharding).
  virtual std::unique_ptr<FrequencyOracle> CloneEmpty() const = 0;

  /// Adds another shard's aggregate state into this one. The other oracle
  /// must come from CloneEmpty() on a compatible instance.
  virtual void MergeFrom(const FrequencyOracle& other) = 0;

 protected:
  FrequencyOracle(uint64_t domain, double eps);

  void CheckMergeCompatible(const FrequencyOracle& other) const;

  uint64_t domain_;
  double eps_;
  uint64_t reports_ = 0;
};

/// Factory over all oracle kinds. `domain` must be >= 1 (HRR additionally
/// pads to a power of two internally).
std::unique_ptr<FrequencyOracle> MakeOracle(OracleKind kind, uint64_t domain,
                                            double eps);

}  // namespace ldp

#endif  // LDPRANGE_FREQUENCY_FREQUENCY_ORACLE_H_
