// Generalized Randomized Response (k-RR).
//
// The direct generalization of Warner's 1965 randomized response to a
// k-valued domain (Kairouz et al., ICML 2016): report the true value with
// probability p = e^eps / (e^eps + k - 1), otherwise report a uniformly
// random *other* value. Used standalone for small domains and as the inner
// perturbation primitive of OLH (paper Section 3.2).

#ifndef LDPRANGE_FREQUENCY_GRR_H_
#define LDPRANGE_FREQUENCY_GRR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "frequency/frequency_oracle.h"

namespace ldp {

/// Stateless client-side k-RR randomizer; shared with OLH.
/// Returns the perturbed value in [0, k).
uint64_t GrrPerturb(uint64_t value, uint64_t k, double eps, Rng& rng);

/// Probability that k-RR reports the true value.
double GrrTruthProbability(uint64_t k, double eps);

/// GRR frequency oracle.
class GrrOracle final : public FrequencyOracle {
 public:
  GrrOracle(uint64_t domain, double eps);

  double ReportBits() const override;
  double EstimatorVariance() const override;
  void SubmitValue(uint64_t value, Rng& rng) override;
  void SubmitBatch(std::span<const uint64_t> values, Rng& rng) override;
  std::vector<double> EstimateFractions() const override;
  std::unique_ptr<FrequencyOracle> CloneEmpty() const override;
  void MergeFrom(const FrequencyOracle& other) override;

 private:
  std::vector<uint64_t> counts_;
};

}  // namespace ldp

#endif  // LDPRANGE_FREQUENCY_GRR_H_
