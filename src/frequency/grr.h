// Generalized Randomized Response (k-RR).
//
// The direct generalization of Warner's 1965 randomized response to a
// k-valued domain (Kairouz et al., ICML 2016): report the true value with
// probability p = e^eps / (e^eps + k - 1), otherwise report a uniformly
// random *other* value. Used standalone for small domains and as the inner
// perturbation primitive of OLH (paper Section 3.2).

#ifndef LDPRANGE_FREQUENCY_GRR_H_
#define LDPRANGE_FREQUENCY_GRR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "frequency/frequency_oracle.h"

namespace ldp {

/// Stateless client-side k-RR randomizer; shared with OLH.
/// Returns the perturbed value in [0, k).
uint64_t GrrPerturb(uint64_t value, uint64_t k, double eps, Rng& rng);

/// Probability that k-RR reports the true value.
double GrrTruthProbability(uint64_t k, double eps);

/// Debiased fraction estimates from raw k-RR tallies over n reports
/// (k = counts.size()); all zeros when n == 0, with the matching +inf
/// variance reported by GrrLowFrequencyVariance. Shared by GrrOracle and
/// the AHEAD wire server's per-level histograms.
std::vector<double> GrrDebias(std::span<const uint64_t> counts, uint64_t n,
                              double eps);

/// Low-frequency per-item variance of the k-RR estimator over n reports:
/// q(1-q) / (n (p-q)^2) with q = (1-p)/(k-1); +inf when n == 0.
double GrrLowFrequencyVariance(uint64_t k, double eps, uint64_t n);

/// GRR frequency oracle.
class GrrOracle final : public FrequencyOracle {
 public:
  GrrOracle(uint64_t domain, double eps);

  double ReportBits() const override;
  double EstimatorVariance() const override;
  void SubmitValue(uint64_t value, Rng& rng) override;
  void SubmitBatch(std::span<const uint64_t> values, Rng& rng) override;
  std::vector<double> EstimateFractions() const override;
  std::unique_ptr<FrequencyOracle> CloneEmpty() const override;
  void MergeFrom(const FrequencyOracle& other) override;

 private:
  std::vector<uint64_t> counts_;
};

}  // namespace ldp

#endif  // LDPRANGE_FREQUENCY_GRR_H_
