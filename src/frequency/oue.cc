#include "frequency/oue.h"

#include <cmath>
#include <limits>

#include "common/binomial.h"
#include "common/check.h"

namespace ldp {

OueAggregateNoiser::OueAggregateNoiser(uint64_t n, double eps)
    : n_(static_cast<int64_t>(n)),
      q_(1.0 / (1.0 + std::exp(eps))),
      zero_cell_(static_cast<int64_t>(n), 1.0 / (1.0 + std::exp(eps))) {}

OueOracle::OueOracle(uint64_t domain, double eps, Mode mode)
    : FrequencyOracle(domain, eps),
      mode_(mode),
      true_counts_(mode == Mode::kSimulated ? domain : 0, 0),
      noisy_counts_(domain, 0) {
  LDP_CHECK_GE(domain, 1u);
}

double OueOracle::ReportBits() const { return static_cast<double>(domain_); }

double OueOracle::FlipProbability() const {
  return 1.0 / (1.0 + std::exp(eps_));
}

double OueOracle::EstimatorVariance() const {
  if (reports_ == 0) return std::numeric_limits<double>::infinity();
  return OracleVariance(eps_, static_cast<double>(reports_));
}

void OueOracle::SubmitValue(uint64_t value, Rng& rng) {
  LDP_CHECK_LT(value, domain_);
  LDP_CHECK_MSG(!finalized_, "SubmitValue after Finalize");
  if (mode_ == Mode::kSimulated) {
    ++true_counts_[value];
  } else {
    const double q = FlipProbability();
    for (uint64_t j = 0; j < domain_; ++j) {
      double p_one = (j == value) ? 0.5 : q;
      if (rng.Bernoulli(p_one)) {
        ++noisy_counts_[j];
      }
    }
  }
  ++reports_;
}

void OueOracle::SubmitBatch(std::span<const uint64_t> values, Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "SubmitBatch after Finalize");
  if (mode_ == Mode::kSimulated) {
    // The simulated path draws no randomness per user, so the whole batch
    // reduces to exact count increments.
    for (uint64_t value : values) {
      LDP_CHECK_LT(value, domain_);
      ++true_counts_[value];
    }
    reports_ += values.size();
  } else {
    for (uint64_t value : values) {
      SubmitValue(value, rng);
    }
  }
}

void OueOracle::Finalize(Rng& rng) {
  if (mode_ != Mode::kSimulated || finalized_) {
    finalized_ = true;
    return;
  }
  const OueAggregateNoiser noiser(reports_, eps_);
  for (uint64_t j = 0; j < domain_; ++j) {
    noisy_counts_[j] = noiser.NoisyCount(true_counts_[j], rng);
  }
  finalized_ = true;
}

std::vector<double> OueOracle::EstimateFractions() const {
  LDP_CHECK_MSG(mode_ == Mode::kExact || finalized_,
                "simulated OUE requires Finalize() before estimation");
  std::vector<double> est(domain_, 0.0);
  if (reports_ == 0) return est;
  const double p = 0.5;
  const double q = FlipProbability();
  const double n = static_cast<double>(reports_);
  for (uint64_t j = 0; j < domain_; ++j) {
    est[j] = (static_cast<double>(noisy_counts_[j]) / n - q) / (p - q);
  }
  return est;
}

std::unique_ptr<FrequencyOracle> OueOracle::CloneEmpty() const {
  return std::make_unique<OueOracle>(domain_, eps_, mode_);
}

void OueOracle::MergeFrom(const FrequencyOracle& other) {
  CheckMergeCompatible(other);
  const auto* o = dynamic_cast<const OueOracle*>(&other);
  LDP_CHECK_MSG(o != nullptr, "MergeFrom requires an OueOracle");
  LDP_CHECK(o->mode_ == mode_);
  LDP_CHECK_MSG(!finalized_ && !o->finalized_,
                "cannot merge finalized OUE aggregates");
  for (uint64_t j = 0; j < domain_; ++j) {
    noisy_counts_[j] += o->noisy_counts_[j];
    if (mode_ == Mode::kSimulated) {
      true_counts_[j] += o->true_counts_[j];
    }
  }
  reports_ += o->reports_;
}

}  // namespace ldp
