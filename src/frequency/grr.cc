#include "frequency/grr.h"

#include <cmath>
#include <limits>

#include "common/bit_util.h"
#include "common/check.h"

namespace ldp {

double GrrTruthProbability(uint64_t k, double eps) {
  LDP_CHECK_GE(k, 2u);
  double e = std::exp(eps);
  return e / (e + static_cast<double>(k) - 1.0);
}

uint64_t GrrPerturb(uint64_t value, uint64_t k, double eps, Rng& rng) {
  LDP_DCHECK_LT(value, k);
  double p = GrrTruthProbability(k, eps);
  if (rng.Bernoulli(p)) {
    return value;
  }
  // Uniform over the k-1 *other* values: draw from [0, k-1) and skip self.
  uint64_t r = rng.UniformInt(k - 1);
  return r >= value ? r + 1 : r;
}

std::vector<double> GrrDebias(std::span<const uint64_t> counts, uint64_t n,
                              double eps) {
  std::vector<double> est(counts.size(), 0.0);
  if (n == 0) return est;
  double p = GrrTruthProbability(counts.size(), eps);
  double q = (1.0 - p) / (static_cast<double>(counts.size()) - 1.0);
  double dn = static_cast<double>(n);
  for (size_t j = 0; j < counts.size(); ++j) {
    est[j] = (static_cast<double>(counts[j]) / dn - q) / (p - q);
  }
  return est;
}

double GrrLowFrequencyVariance(uint64_t k, double eps, uint64_t n) {
  if (n == 0) return std::numeric_limits<double>::infinity();
  double p = GrrTruthProbability(k, eps);
  double q = (1.0 - p) / (static_cast<double>(k) - 1.0);
  double d = p - q;
  return q * (1.0 - q) / (static_cast<double>(n) * d * d);
}

GrrOracle::GrrOracle(uint64_t domain, double eps)
    : FrequencyOracle(domain, eps), counts_(domain, 0) {
  LDP_CHECK_GE(domain, 2u);
}

double GrrOracle::ReportBits() const {
  return static_cast<double>(Log2Ceil(domain_));
}

double GrrOracle::EstimatorVariance() const {
  // Low-frequency item variance; D-dependent, unlike the D-free V_F
  // oracles.
  return GrrLowFrequencyVariance(domain_, eps_, reports_);
}

void GrrOracle::SubmitValue(uint64_t value, Rng& rng) {
  LDP_CHECK_LT(value, domain_);
  ++counts_[GrrPerturb(value, domain_, eps_, rng)];
  ++reports_;
}

void GrrOracle::SubmitBatch(std::span<const uint64_t> values, Rng& rng) {
  for (uint64_t value : values) {
    LDP_CHECK_LT(value, domain_);
    ++counts_[GrrPerturb(value, domain_, eps_, rng)];
  }
  reports_ += values.size();
}

std::vector<double> GrrOracle::EstimateFractions() const {
  return GrrDebias(counts_, reports_, eps_);
}

std::unique_ptr<FrequencyOracle> GrrOracle::CloneEmpty() const {
  return std::make_unique<GrrOracle>(domain_, eps_);
}

void GrrOracle::MergeFrom(const FrequencyOracle& other) {
  CheckMergeCompatible(other);
  const auto* o = dynamic_cast<const GrrOracle*>(&other);
  LDP_CHECK_MSG(o != nullptr, "MergeFrom requires a GrrOracle");
  for (uint64_t j = 0; j < domain_; ++j) {
    counts_[j] += o->counts_[j];
  }
  reports_ += o->reports_;
}

}  // namespace ldp
