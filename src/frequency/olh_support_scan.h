// Public entry point for the OLH support-scan kernel (see
// olh_support_scan.inc for the body and its blocking scheme).
//
// Folds `n` (seed, perturbed-cell) reports into per-item support counts
// over [0, domain): support[j] += |{i : H_{seed_i}(j) == cell_i}|. The
// kernel is compiled once per SIMD tier and dispatched at runtime through
// common/cpu_dispatch.h, so --dispatch= overrides apply. Pure integer
// accumulation — results are bit-identical across tiers and across any
// partitioning of the report range, which is what lets both OlhOracle's
// deferred decode and HierarchicalGrid's deferred finalize shard calls
// freely over threads.

#ifndef LDPRANGE_FREQUENCY_OLH_SUPPORT_SCAN_H_
#define LDPRANGE_FREQUENCY_OLH_SUPPORT_SCAN_H_

#include <cstdint>

namespace ldp {

/// Accumulates support counts for `n` OLH reports (hash range `g`) over an
/// item domain of size `domain` into `support` (length `domain`, added to,
/// not overwritten).
void OlhAccumulateSupport(const uint64_t* seeds, const uint32_t* cells,
                          uint64_t n, uint64_t g, uint64_t domain,
                          uint64_t* support);

}  // namespace ldp

#endif  // LDPRANGE_FREQUENCY_OLH_SUPPORT_SCAN_H_
