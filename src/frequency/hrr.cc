#include "frequency/hrr.h"

#include <cmath>
#include <limits>

#include "common/bit_util.h"
#include "common/check.h"
#include "frequency/hadamard.h"
#include "protocol/wire.h"

namespace ldp {

HrrOracle::HrrOracle(uint64_t domain, double eps)
    : FrequencyOracle(domain, eps),
      padded_(NextPowerOfTwo(domain)),
      coefficient_sums_(padded_, 0) {
  LDP_CHECK_GE(domain, 1u);
}

double HrrOracle::KeepProbability() const {
  double e = std::exp(eps_);
  return e / (1.0 + e);
}

double HrrOracle::ReportBits() const {
  return static_cast<double>(Log2Ceil(padded_)) + 1.0;
}

double HrrOracle::EstimatorVariance() const {
  if (reports_ == 0) return std::numeric_limits<double>::infinity();
  return HrrExactVariance(eps_, static_cast<double>(reports_));
}

HrrReport HrrEncode(uint64_t padded_domain, double eps, uint64_t value,
                    int sign, Rng& rng) {
  LDP_CHECK(IsPowerOfTwo(padded_domain));
  LDP_CHECK_LT(value, padded_domain);
  LDP_CHECK(sign == 1 || sign == -1);
  HrrReport report;
  report.coefficient_index = rng.UniformInt(padded_domain);
  int coefficient = sign * HadamardSign(value, report.coefficient_index);
  double e = std::exp(eps);
  if (!rng.Bernoulli(e / (1.0 + e))) {
    coefficient = -coefficient;
  }
  report.sign = static_cast<int8_t>(coefficient);
  return report;
}

void HrrOracle::SubmitValue(uint64_t value, Rng& rng) {
  SubmitSignedValue(value, +1, rng);
}

void HrrOracle::SubmitSignedValue(uint64_t value, int sign, Rng& rng) {
  LDP_CHECK_LT(value, domain_);
  AbsorbReport(HrrEncode(padded_, eps_, value, sign, rng));
}

void HrrOracle::AbsorbReport(const HrrReport& report) {
  LDP_CHECK_LT(report.coefficient_index, padded_);
  LDP_CHECK(report.sign == 1 || report.sign == -1);
  coefficient_sums_[report.coefficient_index] += report.sign;
  ++reports_;
}

std::vector<double> HrrOracle::EstimateFractions() const {
  std::vector<double> spectrum(padded_, 0.0);
  if (reports_ == 0) {
    return std::vector<double>(domain_, 0.0);
  }
  for (uint64_t j = 0; j < padded_; ++j) {
    spectrum[j] = static_cast<double>(coefficient_sums_[j]);
  }
  // theta_hat[z] = FWHT(O)[z] / (N (2p-1)): the index-sampling factor D and
  // the two 1/sqrt(D) normalizations cancel exactly.
  FastWalshHadamard(spectrum);
  double scale =
      1.0 / (static_cast<double>(reports_) * (2.0 * KeepProbability() - 1.0));
  std::vector<double> est(domain_, 0.0);
  for (uint64_t z = 0; z < domain_; ++z) {
    est[z] = spectrum[z] * scale;
  }
  return est;
}

std::unique_ptr<FrequencyOracle> HrrOracle::CloneEmpty() const {
  return std::make_unique<HrrOracle>(domain_, eps_);
}

void HrrOracle::MergeFrom(const FrequencyOracle& other) {
  CheckMergeCompatible(other);
  const auto* o = dynamic_cast<const HrrOracle*>(&other);
  LDP_CHECK_MSG(o != nullptr, "MergeFrom requires an HrrOracle");
  for (uint64_t j = 0; j < padded_; ++j) {
    coefficient_sums_[j] += o->coefficient_sums_[j];
  }
  reports_ += o->reports_;
}

void HrrOracle::AppendState(std::vector<uint8_t>& out) const {
  protocol::AppendVarU64(out, reports_);
  protocol::AppendVarU64(out, padded_);
  for (int64_t sum : coefficient_sums_) {
    protocol::AppendU64(out, static_cast<uint64_t>(sum));
  }
}

bool HrrOracle::RestoreState(protocol::WireReader& reader) {
  uint64_t reports = 0;
  uint64_t padded = 0;
  if (!reader.ReadVarU64(&reports) || !reader.ReadVarU64(&padded)) {
    return false;
  }
  // The padded domain is a cross-check against the destination's own
  // configuration (already fixed at construction), never an allocation
  // size — a forged value fails here without touching memory.
  if (padded != padded_) return false;
  for (uint64_t j = 0; j < padded_; ++j) {
    uint64_t sum = 0;
    if (!reader.ReadU64(&sum)) return false;
    coefficient_sums_[j] = static_cast<int64_t>(sum);
  }
  reports_ = reports;
  return true;
}

}  // namespace ldp
