#include "frequency/hadamard.h"

#include "common/bit_util.h"
#include "common/check.h"

namespace ldp {

void FastWalshHadamard(std::vector<double>& data) {
  const size_t n = data.size();
  LDP_CHECK_MSG(IsPowerOfTwo(n), "FWHT requires a power-of-two length");
  for (size_t len = 1; len < n; len <<= 1) {
    for (size_t block = 0; block < n; block += len << 1) {
      for (size_t i = block; i < block + len; ++i) {
        double a = data[i];
        double b = data[i + len];
        data[i] = a + b;
        data[i + len] = a - b;
      }
    }
  }
}

int HadamardEntry(uint64_t i, uint64_t j) { return HadamardSign(i, j); }

}  // namespace ldp
