// Fast Walsh–Hadamard transform.
//
// The Hadamard matrix phi of dimension D (a power of two) has entries
// phi[i][j] = (-1)^{<i,j>} where <i,j> counts the 1-bits that i and j share
// (paper Figure 1, scaled by sqrt(D)). The transform is involutive up to a
// factor of D: FWHT(FWHT(x)) = D * x. HRR decodes all frequencies with one
// O(D log D) transform instead of O(N D) work (paper Section 3.2).

#ifndef LDPRANGE_FREQUENCY_HADAMARD_H_
#define LDPRANGE_FREQUENCY_HADAMARD_H_

#include <cstdint>
#include <vector>

namespace ldp {

/// In-place unnormalized fast Walsh–Hadamard transform. Requires data.size()
/// to be a power of two.
void FastWalshHadamard(std::vector<double>& data);

/// Single entry of the (unnormalized, +/-1) Hadamard matrix.
int HadamardEntry(uint64_t i, uint64_t j);

}  // namespace ldp

#endif  // LDPRANGE_FREQUENCY_HADAMARD_H_
