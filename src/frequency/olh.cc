#include "frequency/olh.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bit_util.h"
#include "common/check.h"
#include "common/cpu_dispatch.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "frequency/grr.h"

namespace ldp {

namespace {

// Local always-inlined copy of Mix64 (common/hash.cc). It must mirror that
// definition bit for bit — the Olh.DeferredMatchesEagerSupport test guards
// the pairing. The duplication is deliberate: the deferred kernel's
// throughput lives or dies on this inlining into the blocked loop, while
// hash.cc keeps the out-of-line definition the eager baseline calls.
inline uint64_t DecodeMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

// Folds reports [0, n) into support[0, domain): support[j] gains one unit
// per report whose perturbed cell equals H_seed(j). Doubly blocked:
//   * the domain is cut into L1-sized stripes so the live counters stay
//     cache-resident while the (much smaller) report list re-streams once
//     per stripe, instead of the counters re-streaming once per report;
//   * within a stripe, reports are tiled in groups of kReportTile whose
//     derived constants live in registers, so each support[j] is loaded
//     and stored once per tile and the independent hash chains keep the
//     ALU ports saturated.
// The branchless membership test inverts the multiply-high range reduction
// of SeededHash: (h * g) >> 64 == cell iff h lands in
// [ceil(cell * 2^64 / g), ceil((cell + 1) * 2^64 / g)).
LDP_TARGET_CLONES
void AccumulateSupport(const uint64_t* seeds, const uint32_t* cells,
                       uint64_t n, uint64_t g, uint64_t domain,
                       uint64_t* support) {
  constexpr uint64_t kDomainStripe = 4096;  // 32 KiB of live counters
  constexpr uint64_t kReportTile = 8;
  uint64_t mul[kReportTile];
  uint64_t xr[kReportTile];
  uint64_t lo[kReportTile];
  uint64_t width[kReportTile];
  for (uint64_t d0 = 0; d0 < domain; d0 += kDomainStripe) {
    const uint64_t d1 = std::min(domain, d0 + kDomainStripe);
    for (uint64_t r0 = 0; r0 < n; r0 += kReportTile) {
      const uint64_t tile = std::min(kReportTile, n - r0);
      // The per-report constants are recomputed per stripe; ~10 ops per
      // report amortized over a 4096-item stripe is noise.
      for (uint64_t t = 0; t < tile; ++t) {
        const uint64_t seed = seeds[r0 + t];
        // SeededHash(seed, j, g) = Mix64(Mix64(j + mul) ^ xr) in [0, g).
        mul[t] = 0x9E3779B97F4A7C15ULL * seed;
        xr[t] = seed + 0xD1B54A32D192ED03ULL;
        const uint64_t cell = cells[r0 + t];
        lo[t] = static_cast<uint64_t>(
            ((static_cast<__uint128_t>(cell) << 64) + g - 1) / g);
        // For cell + 1 == g the 128-bit quotient is exactly 2^64; the cast
        // wraps it to 0 and the width subtraction below wraps it back.
        const uint64_t hi = static_cast<uint64_t>(
            ((static_cast<__uint128_t>(cell + 1) << 64) + g - 1) / g);
        width[t] = hi - lo[t];
      }
      if (tile == kReportTile) {
        // Full tile: the fixed trip count lets the compiler unroll the
        // inner reduction completely.
        for (uint64_t j = d0; j < d1; ++j) {
          uint64_t acc = 0;
          for (uint64_t t = 0; t < kReportTile; ++t) {
            uint64_t h = DecodeMix64(DecodeMix64(j + mul[t]) ^ xr[t]);
            acc += (h - lo[t] < width[t]) ? 1 : 0;
          }
          support[j] += acc;
        }
      } else {
        for (uint64_t j = d0; j < d1; ++j) {
          uint64_t acc = 0;
          for (uint64_t t = 0; t < tile; ++t) {
            uint64_t h = DecodeMix64(DecodeMix64(j + mul[t]) ^ xr[t]);
            acc += (h - lo[t] < width[t]) ? 1 : 0;
          }
          support[j] += acc;
        }
      }
    }
  }
}

}  // namespace

uint64_t OlhOptimalHashRange(double eps) {
  // Clamp before rounding: std::llround(std::exp(eps)) overflows long long
  // for eps >~ 44 (undefined behavior). Also catches a non-finite e^eps.
  double e = std::exp(eps);
  if (!(e < static_cast<double>(kOlhMaxHashRange))) {
    return kOlhMaxHashRange;
  }
  // Clamp again after rounding: e just below 2^24 can round up and the +1
  // overshoot the ceiling.
  uint64_t g = static_cast<uint64_t>(std::llround(e)) + 1;
  if (g > kOlhMaxHashRange) g = kOlhMaxHashRange;
  return g < 2 ? 2 : g;
}

OlhOracle::OlhOracle(uint64_t domain, double eps, uint64_t g_override,
                     OlhDecode decode)
    : FrequencyOracle(domain, eps),
      g_(g_override != 0 ? g_override : OlhOptimalHashRange(eps)),
      decode_(decode),
      support_(domain, 0) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_GE(g_, 2u);
  LDP_CHECK_LE(g_, kOlhMaxHashRange);
}

double OlhOracle::ReportBits() const {
  // seed (64 bits) + perturbed cell index.
  return 64.0 + static_cast<double>(Log2Ceil(g_));
}

double OlhOracle::EstimatorVariance() const {
  if (reports_ == 0) return std::numeric_limits<double>::infinity();
  // Var = q'(1-q')/(n (p - 1/g)^2) with q' = 1/g the support-collision
  // rate for a non-held item; equals V_F at the optimal g.
  double p = GrrTruthProbability(g_, eps_);
  double q = 1.0 / static_cast<double>(g_);
  double n = static_cast<double>(reports_);
  return q * (1.0 - q) / (n * (p - q) * (p - q));
}

void OlhOracle::IngestValue(uint64_t value, Rng& rng) {
  LDP_CHECK_LT(value, domain_);
  uint64_t seed = rng.Next();
  uint64_t h = SeededHash(seed, value, g_);
  uint64_t reported = GrrPerturb(h, g_, eps_, rng);
  if (decode_ == OlhDecode::kEager) {
    // Aggregation: every item that the sampled hash sends to the reported
    // cell gains one unit of support. This is the O(D)-per-report decode
    // the paper flags as OLH's scaling bottleneck.
    for (uint64_t j = 0; j < domain_; ++j) {
      if (SeededHash(seed, j, g_) == reported) {
        ++support_[j];
      }
    }
  } else {
    pending_seeds_.push_back(seed);
    pending_cells_.push_back(static_cast<uint32_t>(reported));
  }
  ++reports_;
}

void OlhOracle::AbsorbReport(uint64_t seed, uint32_t cell) {
  LDP_CHECK_LT(cell, g_);
  if (decode_ == OlhDecode::kEager) {
    for (uint64_t j = 0; j < domain_; ++j) {
      if (SeededHash(seed, j, g_) == cell) {
        ++support_[j];
      }
    }
  } else {
    pending_seeds_.push_back(seed);
    pending_cells_.push_back(cell);
  }
  ++reports_;
}

void OlhOracle::SubmitValue(uint64_t value, Rng& rng) {
  IngestValue(value, rng);
}

void OlhOracle::SubmitBatch(std::span<const uint64_t> values, Rng& rng) {
  ReserveReports(values.size());
  for (uint64_t value : values) {
    IngestValue(value, rng);
  }
}

void OlhOracle::ReserveReports(uint64_t expected) {
  if (decode_ == OlhDecode::kEager) return;
  // Grow geometrically: an exact reserve() per batch would reallocate (and
  // copy everything) on every chunk of a long chunked ingest stream.
  uint64_t needed = pending_seeds_.size() + expected;
  if (needed > pending_seeds_.capacity()) {
    uint64_t target = std::max(needed, 2 * pending_seeds_.capacity());
    pending_seeds_.reserve(target);
    pending_cells_.reserve(target);
  }
}

void OlhOracle::DecodePending() const {
  std::lock_guard<std::mutex> lock(decode_mu_);
  const uint64_t n = pending_seeds_.size();
  if (n == 0) return;
  unsigned threads =
      decode_threads_ != 0 ? decode_threads_ : HardwareThreads();
  // Don't fan out for small decodes: each worker costs a thread spawn plus
  // a domain-sized accumulator, which would dominate tiny report queues —
  // and callers like the experiment harness finalize many small oracles
  // from already-parallel trials.
  constexpr uint64_t kMinReportsPerThread = 4096;
  unsigned chunks = static_cast<unsigned>(std::min<uint64_t>(
      std::max(1u, threads), std::max<uint64_t>(1, n / kMinReportsPerThread)));
  if (chunks <= 1) {
    AccumulateSupport(pending_seeds_.data(), pending_cells_.data(), n, g_,
                      domain_, support_.data());
  } else {
    // One support accumulator per chunk (the CloneEmpty/MergeFrom sharding
    // contract, specialized to the raw count vector); the final sums are
    // integer adds, so the result is bit-identical for every thread count.
    std::vector<std::vector<uint64_t>> shard(chunks);
    ParallelFor(n, chunks, [&](unsigned chunk, uint64_t begin, uint64_t end) {
      shard[chunk].assign(domain_, 0);
      AccumulateSupport(pending_seeds_.data() + begin,
                        pending_cells_.data() + begin, end - begin, g_,
                        domain_, shard[chunk].data());
    });
    for (const std::vector<uint64_t>& s : shard) {
      for (uint64_t j = 0; j < domain_; ++j) {
        support_[j] += s[j];
      }
    }
  }
  pending_seeds_.clear();
  pending_cells_.clear();
}

void OlhOracle::Finalize(Rng& /*rng*/) { DecodePending(); }

const std::vector<uint64_t>& OlhOracle::SupportCounts() const {
  DecodePending();
  return support_;
}

std::vector<double> OlhOracle::EstimateFractions() const {
  DecodePending();
  std::vector<double> est(domain_, 0.0);
  if (reports_ == 0) return est;
  double p = GrrTruthProbability(g_, eps_);
  double q = 1.0 / static_cast<double>(g_);
  double n = static_cast<double>(reports_);
  for (uint64_t j = 0; j < domain_; ++j) {
    est[j] = (static_cast<double>(support_[j]) / n - q) / (p - q);
  }
  return est;
}

std::unique_ptr<FrequencyOracle> OlhOracle::CloneEmpty() const {
  return std::make_unique<OlhOracle>(domain_, eps_, g_, decode_);
}

void OlhOracle::MergeFrom(const FrequencyOracle& other) {
  CheckMergeCompatible(other);
  const auto* o = dynamic_cast<const OlhOracle*>(&other);
  LDP_CHECK_MSG(o != nullptr, "MergeFrom requires an OlhOracle");
  LDP_CHECK(o->g_ == g_);
  for (uint64_t j = 0; j < domain_; ++j) {
    support_[j] += o->support_[j];
  }
  // Adopt the shard's undecoded reports as-is; they join this oracle's next
  // support scan.
  pending_seeds_.insert(pending_seeds_.end(), o->pending_seeds_.begin(),
                        o->pending_seeds_.end());
  pending_cells_.insert(pending_cells_.end(), o->pending_cells_.begin(),
                        o->pending_cells_.end());
  reports_ += o->reports_;
}

}  // namespace ldp
