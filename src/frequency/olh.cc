#include "frequency/olh.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bit_util.h"
#include "common/check.h"
#include "common/cpu_dispatch.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "frequency/grr.h"
#include "frequency/olh_support_scan.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "protocol/wire.h"

namespace ldp {

namespace {

// Local always-inlined copy of Mix64 (common/hash.cc). It must mirror that
// definition bit for bit — the Olh.DeferredMatchesEagerSupport test guards
// the pairing. The duplication is deliberate: the deferred kernel's
// throughput lives or dies on this inlining into the blocked loop, while
// hash.cc keeps the out-of-line definition the eager baseline calls.
inline uint64_t DecodeMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

// The support-scan kernel (see olh_support_scan.inc for the body and its
// blocking scheme), compiled once per SIMD tier and selected at runtime
// through ResolvedSimdTier() — the manual-dispatch layer of
// common/cpu_dispatch.h, so --dispatch= overrides apply and the variants
// exist under clang and sanitizers too.
#define LDP_SCAN_TARGET
#define LDP_SCAN_NAME AccumulateSupportScalar
#include "frequency/olh_support_scan.inc"

#if LDP_SIMD_MANUAL_X86
#define LDP_SCAN_TARGET __attribute__((target("avx2,fma")))
#define LDP_SCAN_NAME AccumulateSupportAvx2
#include "frequency/olh_support_scan.inc"

#define LDP_SCAN_TARGET \
  __attribute__((target("avx512f,avx512bw,avx512dq,avx512vl")))
#define LDP_SCAN_NAME AccumulateSupportAvx512
#include "frequency/olh_support_scan.inc"
#endif  // LDP_SIMD_MANUAL_X86

}  // namespace

void OlhAccumulateSupport(const uint64_t* seeds, const uint32_t* cells,
                          uint64_t n, uint64_t g, uint64_t domain,
                          uint64_t* support) {
#if LDP_SIMD_MANUAL_X86
  switch (ResolvedSimdTier()) {
    case SimdTier::kAvx512:
      AccumulateSupportAvx512(seeds, cells, n, g, domain, support);
      return;
    case SimdTier::kAvx2:
      AccumulateSupportAvx2(seeds, cells, n, g, domain, support);
      return;
    default:
      break;
  }
#endif
  AccumulateSupportScalar(seeds, cells, n, g, domain, support);
}

uint64_t OlhOptimalHashRange(double eps) {
  // Clamp before rounding: std::llround(std::exp(eps)) overflows long long
  // for eps >~ 44 (undefined behavior). Also catches a non-finite e^eps.
  double e = std::exp(eps);
  if (!(e < static_cast<double>(kOlhMaxHashRange))) {
    return kOlhMaxHashRange;
  }
  // Clamp again after rounding: e just below 2^24 can round up and the +1
  // overshoot the ceiling.
  uint64_t g = static_cast<uint64_t>(std::llround(e)) + 1;
  if (g > kOlhMaxHashRange) g = kOlhMaxHashRange;
  return g < 2 ? 2 : g;
}

OlhOracle::OlhOracle(uint64_t domain, double eps, uint64_t g_override,
                     OlhDecode decode)
    : FrequencyOracle(domain, eps),
      g_(g_override != 0 ? g_override : OlhOptimalHashRange(eps)),
      decode_(decode),
      support_(domain, 0) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_GE(g_, 2u);
  LDP_CHECK_LE(g_, kOlhMaxHashRange);
}

double OlhOracle::ReportBits() const {
  // seed (64 bits) + perturbed cell index.
  return 64.0 + static_cast<double>(Log2Ceil(g_));
}

double OlhOracle::EstimatorVariance() const {
  if (reports_ == 0) return std::numeric_limits<double>::infinity();
  // Var = q'(1-q')/(n (p - 1/g)^2) with q' = 1/g the support-collision
  // rate for a non-held item; equals V_F at the optimal g.
  double p = GrrTruthProbability(g_, eps_);
  double q = 1.0 / static_cast<double>(g_);
  double n = static_cast<double>(reports_);
  return q * (1.0 - q) / (n * (p - q) * (p - q));
}

void OlhOracle::IngestValue(uint64_t value, Rng& rng) {
  LDP_CHECK_LT(value, domain_);
  uint64_t seed = rng.Next();
  uint64_t h = SeededHash(seed, value, g_);
  uint64_t reported = GrrPerturb(h, g_, eps_, rng);
  if (decode_ == OlhDecode::kEager) {
    // Aggregation: every item that the sampled hash sends to the reported
    // cell gains one unit of support. This is the O(D)-per-report decode
    // the paper flags as OLH's scaling bottleneck.
    for (uint64_t j = 0; j < domain_; ++j) {
      if (SeededHash(seed, j, g_) == reported) {
        ++support_[j];
      }
    }
  } else {
    pending_seeds_.PushBack(seed);
    pending_cells_.PushBack(static_cast<uint32_t>(reported));
  }
  ++reports_;
}

void OlhOracle::AbsorbReport(uint64_t seed, uint32_t cell) {
  LDP_CHECK_LT(cell, g_);
  if (decode_ == OlhDecode::kEager) {
    for (uint64_t j = 0; j < domain_; ++j) {
      if (SeededHash(seed, j, g_) == cell) {
        ++support_[j];
      }
    }
  } else {
    pending_seeds_.PushBack(seed);
    pending_cells_.PushBack(cell);
  }
  ++reports_;
}

void OlhOracle::SubmitValue(uint64_t value, Rng& rng) {
  IngestValue(value, rng);
}

void OlhOracle::SubmitBatch(std::span<const uint64_t> values, Rng& rng) {
  ReserveReports(values.size());
  for (uint64_t value : values) {
    IngestValue(value, rng);
  }
}

void OlhOracle::ReserveReports(uint64_t expected) {
  if (decode_ == OlhDecode::kEager) return;
  // Arena columns never relocate, so this is purely a chunk-sizing hint
  // that skips the doubling ramp for pre-sized ingests.
  pending_seeds_.Reserve(expected);
  pending_cells_.Reserve(expected);
}

void OlhOracle::DecodePending() const {
  std::lock_guard<std::mutex> lock(decode_mu_);
  const uint64_t n = pending_seeds_.size();
  if (n == 0) return;
  LDP_CHECK(pending_cells_.size() == n);
  // Process-wide histogram: OLH decodes happen on library threads with no
  // service in sight, so the global registry is the only natural home.
  static obs::LatencyHistogram* const scan_ns =
      &obs::MetricsRegistry::Global().GetHistogram("olh.support_scan_ns");
  obs::ScopedTimer timer(scan_ns, "olh.support_scan");
  // The two columns follow the same append schedule, so their chunk
  // boundaries pair up — zip them into (seeds, cells) segments indexed by
  // the global report position.
  struct Segment {
    const uint64_t* seeds;
    const uint32_t* cells;
    uint64_t begin;  // global index of the segment's first report
    uint64_t size;
  };
  const auto seed_chunks = pending_seeds_.Chunks();
  const auto cell_chunks = pending_cells_.Chunks();
  LDP_CHECK(seed_chunks.size() == cell_chunks.size());
  std::vector<Segment> segments;
  segments.reserve(seed_chunks.size());
  uint64_t offset = 0;
  for (size_t s = 0; s < seed_chunks.size(); ++s) {
    LDP_CHECK(seed_chunks[s].size == cell_chunks[s].size);
    segments.push_back({seed_chunks[s].data, cell_chunks[s].data, offset,
                        seed_chunks[s].size});
    offset += seed_chunks[s].size;
  }
  // Scans the reports in global range [lo, hi) into `support`. Per-segment
  // kernel calls accumulate independent integer counts, so splitting at
  // chunk boundaries cannot change the result.
  auto scan_range = [&](uint64_t lo, uint64_t hi, uint64_t* support) {
    for (const Segment& seg : segments) {
      uint64_t b = std::max(lo, seg.begin);
      uint64_t e = std::min(hi, seg.begin + seg.size);
      if (b >= e) continue;
      OlhAccumulateSupport(seg.seeds + (b - seg.begin),
                           seg.cells + (b - seg.begin), e - b, g_, domain_,
                           support);
    }
  };
  unsigned threads =
      decode_threads_ != 0 ? decode_threads_ : HardwareThreads();
  // Don't fan out for small decodes: each worker costs a thread spawn plus
  // a domain-sized accumulator, which would dominate tiny report queues —
  // and callers like the experiment harness finalize many small oracles
  // from already-parallel trials.
  constexpr uint64_t kMinReportsPerThread = 4096;
  unsigned chunks = static_cast<unsigned>(std::min<uint64_t>(
      std::max(1u, threads), std::max<uint64_t>(1, n / kMinReportsPerThread)));
  if (chunks <= 1) {
    scan_range(0, n, support_.data());
  } else {
    // One support accumulator per chunk (the CloneEmpty/MergeFrom sharding
    // contract, specialized to the raw count vector), first-touched by its
    // worker so the pages stay node-local; the final sums are integer adds,
    // so the result is bit-identical for every thread count.
    std::vector<std::vector<uint64_t>> shard(chunks);
    ParallelFor(n, chunks, [&](unsigned chunk, uint64_t begin, uint64_t end) {
      shard[chunk].assign(domain_, 0);
      scan_range(begin, end, shard[chunk].data());
    });
    for (const std::vector<uint64_t>& s : shard) {
      for (uint64_t j = 0; j < domain_; ++j) {
        support_[j] += s[j];
      }
    }
  }
  // Clear() retains the arena blocks: the next ingest/decode cycle of this
  // session refills them with no system allocation.
  pending_seeds_.Clear();
  pending_cells_.Clear();
}

void OlhOracle::Finalize(Rng& /*rng*/) { DecodePending(); }

const std::vector<uint64_t>& OlhOracle::SupportCounts() const {
  DecodePending();
  return support_;
}

std::vector<double> OlhOracle::EstimateFractions() const {
  DecodePending();
  std::vector<double> est(domain_, 0.0);
  if (reports_ == 0) return est;
  double p = GrrTruthProbability(g_, eps_);
  double q = 1.0 / static_cast<double>(g_);
  double n = static_cast<double>(reports_);
  for (uint64_t j = 0; j < domain_; ++j) {
    est[j] = (static_cast<double>(support_[j]) / n - q) / (p - q);
  }
  return est;
}

std::unique_ptr<FrequencyOracle> OlhOracle::CloneEmpty() const {
  return std::make_unique<OlhOracle>(domain_, eps_, g_, decode_);
}

void OlhOracle::MergeFrom(const FrequencyOracle& other) {
  CheckMergeCompatible(other);
  const auto* o = dynamic_cast<const OlhOracle*>(&other);
  LDP_CHECK_MSG(o != nullptr, "MergeFrom requires an OlhOracle");
  LDP_CHECK(o->g_ == g_);
  for (uint64_t j = 0; j < domain_; ++j) {
    support_[j] += o->support_[j];
  }
  // Splice the shard's undecoded reports in O(1): the columns adopt the
  // shard's arena blocks, no bytes are copied. This consumes the source's
  // pending queue — allowed by the merge contract (shards are merged once
  // and then discarded).
  pending_seeds_.Adopt(std::move(o->pending_seeds_));
  pending_cells_.Adopt(std::move(o->pending_cells_));
  reports_ += o->reports_;
}

void OlhOracle::AppendState(std::vector<uint8_t>& out) const {
  std::lock_guard<std::mutex> lock(decode_mu_);
  const uint64_t pending = pending_seeds_.size();
  const uint64_t decoded = reports_ - pending;
  protocol::AppendVarU64(out, reports_);
  protocol::AppendU8(out, decoded > 0 ? 1 : 0);
  if (decoded > 0) {
    for (uint64_t j = 0; j < domain_; ++j) {
      protocol::AppendU64(out, support_[j]);
    }
  }
  protocol::AppendVarU64(out, pending);
  // The two columns follow the same append schedule (see DecodePending),
  // so zipping paired chunks walks the reports in ingest order.
  const auto seed_chunks = pending_seeds_.Chunks();
  const auto cell_chunks = pending_cells_.Chunks();
  LDP_CHECK(seed_chunks.size() == cell_chunks.size());
  for (size_t s = 0; s < seed_chunks.size(); ++s) {
    LDP_CHECK(seed_chunks[s].size == cell_chunks[s].size);
    for (uint64_t i = 0; i < seed_chunks[s].size; ++i) {
      protocol::AppendU64(out, seed_chunks[s].data[i]);
      protocol::AppendU32(out, cell_chunks[s].data[i]);
    }
  }
}

bool OlhOracle::RestoreState(protocol::WireReader& reader) {
  uint64_t reports = 0;
  uint8_t decoded_flag = 0;
  if (!reader.ReadVarU64(&reports) || !reader.ReadU8(&decoded_flag)) {
    return false;
  }
  if (decoded_flag > 1) return false;
  if (decoded_flag == 1) {
    // domain_ is this oracle's own configuration, never a wire value.
    for (uint64_t j = 0; j < domain_; ++j) {
      uint64_t count = 0;
      if (!reader.ReadU64(&count)) return false;
      support_[j] = count;
    }
  }
  uint64_t pending = 0;
  if (!reader.ReadVarU64(&pending)) return false;
  if (pending > reports) return false;
  // Canonical-flag rule: the support section is present exactly when some
  // report has already been decoded into it.
  if ((decoded_flag == 1) != (reports - pending > 0)) return false;
  // Floor check: each pending report costs 12 bytes on the wire, so a
  // forged count beyond what the buffer can hold fails before any append
  // drives allocation. (Division avoids overflow on adversarial counts.)
  constexpr uint64_t kPendingWireBytes = 12;
  if (pending > reader.Remaining() / kPendingWireBytes) return false;
  pending_seeds_.Reserve(pending);
  pending_cells_.Reserve(pending);
  for (uint64_t i = 0; i < pending; ++i) {
    uint64_t seed = 0;
    uint32_t cell = 0;
    if (!reader.ReadU64(&seed) || !reader.ReadU32(&cell)) return false;
    if (cell >= g_) return false;
    pending_seeds_.PushBack(seed);
    pending_cells_.PushBack(cell);
  }
  reports_ = reports;
  return true;
}

}  // namespace ldp
