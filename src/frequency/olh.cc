#include "frequency/olh.h"

#include <cmath>
#include <limits>

#include "common/bit_util.h"
#include "common/check.h"
#include "common/hash.h"
#include "frequency/grr.h"

namespace ldp {

uint64_t OlhOptimalHashRange(double eps) {
  uint64_t g = static_cast<uint64_t>(std::llround(std::exp(eps))) + 1;
  return g < 2 ? 2 : g;
}

OlhOracle::OlhOracle(uint64_t domain, double eps, uint64_t g_override)
    : FrequencyOracle(domain, eps),
      g_(g_override != 0 ? g_override : OlhOptimalHashRange(eps)),
      support_(domain, 0) {
  LDP_CHECK_GE(domain, 2u);
  LDP_CHECK_GE(g_, 2u);
}

double OlhOracle::ReportBits() const {
  // seed (64 bits) + perturbed cell index.
  return 64.0 + static_cast<double>(Log2Ceil(g_));
}

double OlhOracle::EstimatorVariance() const {
  if (reports_ == 0) return std::numeric_limits<double>::infinity();
  // Var = q'(1-q')/(n (p - 1/g)^2) with q' = 1/g the support-collision
  // rate for a non-held item; equals V_F at the optimal g.
  double p = GrrTruthProbability(g_, eps_);
  double q = 1.0 / static_cast<double>(g_);
  double n = static_cast<double>(reports_);
  return q * (1.0 - q) / (n * (p - q) * (p - q));
}

void OlhOracle::SubmitValue(uint64_t value, Rng& rng) {
  LDP_CHECK_LT(value, domain_);
  uint64_t seed = rng.Next();
  uint64_t h = SeededHash(seed, value, g_);
  uint64_t reported = GrrPerturb(h, g_, eps_, rng);
  // Aggregation: every item that the sampled hash sends to the reported
  // cell gains one unit of support. This is the O(D)-per-report decode the
  // paper flags as OLH's scaling bottleneck.
  for (uint64_t j = 0; j < domain_; ++j) {
    if (SeededHash(seed, j, g_) == reported) {
      ++support_[j];
    }
  }
  ++reports_;
}

std::vector<double> OlhOracle::EstimateFractions() const {
  std::vector<double> est(domain_, 0.0);
  if (reports_ == 0) return est;
  double p = GrrTruthProbability(g_, eps_);
  double q = 1.0 / static_cast<double>(g_);
  double n = static_cast<double>(reports_);
  for (uint64_t j = 0; j < domain_; ++j) {
    est[j] = (static_cast<double>(support_[j]) / n - q) / (p - q);
  }
  return est;
}

std::unique_ptr<FrequencyOracle> OlhOracle::CloneEmpty() const {
  return std::make_unique<OlhOracle>(domain_, eps_, g_);
}

void OlhOracle::MergeFrom(const FrequencyOracle& other) {
  CheckMergeCompatible(other);
  const auto* o = dynamic_cast<const OlhOracle*>(&other);
  LDP_CHECK_MSG(o != nullptr, "MergeFrom requires an OlhOracle");
  LDP_CHECK(o->g_ == g_);
  for (uint64_t j = 0; j < domain_; ++j) {
    support_[j] += o->support_[j];
  }
  reports_ += o->reports_;
}

}  // namespace ldp
