// Hadamard Randomized Response (paper Section 3.2; Cormode et al. SIGMOD'18,
// Nguyên et al. 2016).
//
// The user's one-hot vector e_v is viewed in the Hadamard basis, where every
// coefficient is +/-1. The user samples one coefficient index j uniformly,
// perturbs its sign with binary randomized response (keep probability
// p = e^eps/(1+e^eps)) and reports (j, sign): ceil(log2 D) + 1 bits total.
// The aggregator sums reports per coefficient, unbiases by 1/(2p-1), and
// inverts the transform in O(D log D).
//
// HRR natively supports *signed* one-hot inputs (-e_v as well as e_v), which
// is exactly what the Haar levels of the paper's HaarHRR mechanism emit —
// the reason the paper selects HRR as the wavelet perturbation primitive.

#ifndef LDPRANGE_FREQUENCY_HRR_H_
#define LDPRANGE_FREQUENCY_HRR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "frequency/frequency_oracle.h"

namespace ldp::protocol {
class WireReader;
}  // namespace ldp::protocol

namespace ldp {

/// One HRR user report: a sampled Hadamard coefficient index and the
/// randomized sign of that coefficient — ceil(log2 D) + 1 bits on the
/// wire. This is the quantity a real deployment transmits; see
/// src/protocol for serialization.
struct HrrReport {
  uint64_t coefficient_index = 0;
  int8_t sign = +1;  // -1 or +1
};

/// Stateless client-side HRR encoder: samples a coefficient of the
/// (padded) Hadamard spectrum of sign * e_value and perturbs its sign with
/// binary randomized response. `padded_domain` must be a power of two and
/// value < padded_domain. Provides eps-LDP on its own.
HrrReport HrrEncode(uint64_t padded_domain, double eps, uint64_t value,
                    int sign, Rng& rng);

/// HRR frequency oracle. Domains that are not powers of two are padded
/// internally; estimates are returned for the original domain.
class HrrOracle final : public FrequencyOracle {
 public:
  HrrOracle(uint64_t domain, double eps);

  /// Internal (padded) Hadamard dimension.
  uint64_t padded_domain() const { return padded_; }

  /// Binary-RR keep probability p = e^eps / (1 + e^eps).
  double KeepProbability() const;

  double ReportBits() const override;
  double EstimatorVariance() const override;
  bool SupportsSignedValues() const override { return true; }
  void SubmitValue(uint64_t value, Rng& rng) override;
  void SubmitSignedValue(uint64_t value, int sign, Rng& rng) override;
  /// Server-side ingestion of an externally produced report (see
  /// HrrEncode): the aggregation path used by the wire protocol. The
  /// report's coefficient index must be < padded_domain().
  void AbsorbReport(const HrrReport& report);
  std::vector<double> EstimateFractions() const override;
  std::unique_ptr<FrequencyOracle> CloneEmpty() const override;
  void MergeFrom(const FrequencyOracle& other) override;

  /// Appends this oracle's aggregate state in its canonical wire form:
  /// [reports varint][padded varint][padded x sum u64 (two's complement)].
  /// The counterpart of RestoreState; see service/state_wire.h.
  void AppendState(std::vector<uint8_t>& out) const;

  /// Restores serialized state into this (empty, identically configured)
  /// oracle. Total over adversarial bytes: false on truncation or a
  /// padded-domain mismatch (discard the oracle then — state may be
  /// partially written). Reads exactly one AppendState record from
  /// `reader`, so multi-oracle state bodies (per-level, per-tuple)
  /// stream through one reader.
  bool RestoreState(protocol::WireReader& reader);

 private:
  uint64_t padded_;
  // coefficient_sums_[j] = sum of reported +/-1 values for coefficient j.
  std::vector<int64_t> coefficient_sums_;
};

}  // namespace ldp

#endif  // LDPRANGE_FREQUENCY_HRR_H_
