// Optimal Local Hashing (Wang et al., USENIX Security 2017).
//
// Each user samples a hash function H : [D] -> [g] from a seeded family,
// hashes their value, and perturbs the hash with GRR over [g]. The report is
// (seed, perturbed hash). Setting g = e^eps + 1 minimizes variance and
// recovers the shared bound V_F (paper Section 3.2). Decoding costs O(N*D):
// for every report, all items hashing to the reported cell get a support
// increment — the reason the paper (and this library's benches) restricts
// OLH to modest domains.
//
// Two aggregation strategies are available:
//  * kDeferred (default) — SubmitValue/SubmitBatch only append the
//    (seed, cell) report; the O(N*D) support scan runs once, at Finalize
//    (or lazily at first estimate), parallelized over reports with
//    per-thread support accumulators and cache-blocked over the domain.
//    The tradeoff: 12 bytes per undecoded report are buffered until the
//    scan runs (O(N) memory; ~0.75 GiB at the paper's N = 2^26).
//  * kEager — the textbook formulation: every report is decoded with a full
//    O(D) domain scan the moment it arrives. O(D) memory — the choice for
//    memory-bound aggregators — and kept as the baseline for the
//    ingest-throughput bench and as the reference for the deferred path's
//    bit-identical equivalence test.
// Both strategies consume the identical Rng stream and produce bit-identical
// support counts; only when and how fast the scan runs differs.

#ifndef LDPRANGE_FREQUENCY_OLH_H_
#define LDPRANGE_FREQUENCY_OLH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/arena.h"
#include "frequency/frequency_oracle.h"

namespace ldp::protocol {
class WireReader;
}  // namespace ldp::protocol

namespace ldp {

/// When the O(N*D) support scan runs (see file comment).
enum class OlhDecode {
  kDeferred,
  kEager,
};

/// OLH frequency oracle.
class OlhOracle final : public FrequencyOracle {
 public:
  /// `g_override` forces the hash range (0 = use the optimal e^eps + 1).
  OlhOracle(uint64_t domain, double eps, uint64_t g_override = 0,
            OlhDecode decode = OlhDecode::kDeferred);

  /// The hash range g in use.
  uint64_t hash_range() const { return g_; }

  /// The decode strategy this instance was built with.
  OlhDecode decode_mode() const { return decode_; }

  /// Thread count for the deferred support scan (0 = one per hardware
  /// core, the default). The scan sums integer per-thread accumulators, so
  /// results are bit-identical for every thread count.
  void set_decode_threads(unsigned threads) { decode_threads_ = threads; }

  /// Number of reports ingested but not yet folded into the support counts.
  uint64_t pending_reports() const { return pending_seeds_.size(); }
  /// System allocations ever made by the pending-report columns. Clear()
  /// after a decode retains the arena blocks, so the count stays flat
  /// across ingest/decode sessions at steady state (test hook).
  uint64_t pending_allocation_count() const {
    return pending_seeds_.allocation_count() +
           pending_cells_.allocation_count();
  }

  /// Per-item support counts (decodes any pending reports first):
  /// support[j] = number of reports whose perturbed hash matches H_seed(j).
  const std::vector<uint64_t>& SupportCounts() const;

  /// Server side: folds an already-randomized wire report — the
  /// client-side (seed, perturbed cell) pair of protocol::OlhWireReport —
  /// into the aggregate, exactly as if SubmitValue had drawn it locally.
  /// `cell` must be < hash_range() (validate before calling).
  void AbsorbReport(uint64_t seed, uint32_t cell);

  double ReportBits() const override;
  double EstimatorVariance() const override;
  void SubmitValue(uint64_t value, Rng& rng) override;
  void SubmitBatch(std::span<const uint64_t> values, Rng& rng) override;
  void ReserveReports(uint64_t expected) override;
  void Finalize(Rng& rng) override;
  std::vector<double> EstimateFractions() const override;
  std::unique_ptr<FrequencyOracle> CloneEmpty() const override;
  void MergeFrom(const FrequencyOracle& other) override;

  /// Appends this oracle's aggregate state in its canonical wire form:
  /// [reports varint][decoded u8][decoded? domain x support u64]
  /// [pending varint][pending x (seed u64, cell u32)]. The `decoded` flag
  /// is canonical — it is 1 exactly when reports exceed the pending queue,
  /// i.e. when the support array carries information. The counterpart of
  /// RestoreState; see service/state_wire.h.
  void AppendState(std::vector<uint8_t>& out) const;

  /// Restores serialized state into this (empty, identically configured)
  /// oracle. Total over adversarial bytes: the declared pending count is
  /// floor-checked against the bytes actually present before any append,
  /// every cell is validated against hash_range(), and a non-canonical
  /// decoded flag or pending > reports is rejected. Returns false on any
  /// such failure (discard the oracle then — state may be partially
  /// written). Reads exactly one AppendState record from `reader`.
  bool RestoreState(protocol::WireReader& reader);

 private:
  /// Randomizes one value into a (seed, cell) report and either scans it
  /// into support_ (eager) or appends it to the pending queue (deferred).
  void IngestValue(uint64_t value, Rng& rng);

  /// Folds every pending report into support_ (parallel, cache-blocked).
  /// Const because estimation is logically read-only; the pending queue and
  /// support counts are mutable caches of the same aggregate state, guarded
  /// by decode_mu_ so concurrent const queries stay safe.
  void DecodePending() const;

  uint64_t g_;
  OlhDecode decode_;
  unsigned decode_threads_ = 0;
  // Serializes the lazy decode so concurrent const queries cannot race on
  // the mutable caches below (ingestion itself is still single-writer, as
  // for every oracle).
  mutable std::mutex decode_mu_;
  // support_[j] = number of decoded reports whose cell matches H_seed(j).
  mutable std::vector<uint64_t> support_;
  // Undecoded reports, structure-of-arrays on arena-backed columns: the
  // user's public hash seed and the GRR-perturbed cell (g is capped well
  // below 2^32, see kOlhMaxHashRange). Arena columns never relocate on
  // growth (no re-copy of already-ingested reports), retain their blocks
  // across decode cycles, and splice in O(1) on MergeFrom — the merge
  // consumes the source shard's queue, which MergeFrom's contract allows.
  // Both columns see the same append sequence, so their chunk boundaries
  // pair up and the decode kernel can zip them segment by segment.
  mutable ArenaColumn<uint64_t> pending_seeds_;
  mutable ArenaColumn<uint32_t> pending_cells_;
};

/// Hard ceiling on the OLH hash range. Beyond g = e^eps + 1 ~ 2^24 the
/// inner GRR is essentially noiseless and a larger g only inflates the
/// report and the decode cost; the cap also keeps OlhOptimalHashRange from
/// overflowing for large eps (std::exp(44) no longer fits in an int64).
inline constexpr uint64_t kOlhMaxHashRange = uint64_t{1} << 24;

/// The variance-optimal hash range for OLH: round(e^eps) + 1, at least 2,
/// clamped to kOlhMaxHashRange.
uint64_t OlhOptimalHashRange(double eps);

}  // namespace ldp

#endif  // LDPRANGE_FREQUENCY_OLH_H_
