// Optimal Local Hashing (Wang et al., USENIX Security 2017).
//
// Each user samples a hash function H : [D] -> [g] from a seeded family,
// hashes their value, and perturbs the hash with GRR over [g]. The report is
// (seed, perturbed hash). Setting g = e^eps + 1 minimizes variance and
// recovers the shared bound V_F (paper Section 3.2). Decoding costs O(N*D):
// for every report, all items hashing to the reported cell get a support
// increment — the reason the paper (and this library's benches) restricts
// OLH to modest domains.

#ifndef LDPRANGE_FREQUENCY_OLH_H_
#define LDPRANGE_FREQUENCY_OLH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "frequency/frequency_oracle.h"

namespace ldp {

/// OLH frequency oracle.
class OlhOracle final : public FrequencyOracle {
 public:
  /// `g_override` forces the hash range (0 = use the optimal e^eps + 1).
  OlhOracle(uint64_t domain, double eps, uint64_t g_override = 0);

  /// The hash range g in use.
  uint64_t hash_range() const { return g_; }

  double ReportBits() const override;
  double EstimatorVariance() const override;
  void SubmitValue(uint64_t value, Rng& rng) override;
  std::vector<double> EstimateFractions() const override;
  std::unique_ptr<FrequencyOracle> CloneEmpty() const override;
  void MergeFrom(const FrequencyOracle& other) override;

 private:
  uint64_t g_;
  // support_[j] = number of reports whose perturbed hash matches H_seed(j).
  std::vector<uint64_t> support_;
};

/// The variance-optimal hash range for OLH: round(e^eps) + 1, at least 2.
uint64_t OlhOptimalHashRange(double eps);

}  // namespace ldp

#endif  // LDPRANGE_FREQUENCY_OLH_H_
