#include "frequency/sue.h"

#include <cmath>
#include <limits>

#include "common/binomial.h"
#include "common/check.h"

namespace ldp {

double SueVariance(double eps, double n) {
  LDP_CHECK(eps > 0.0);
  LDP_CHECK(n > 0.0);
  double e2 = std::exp(eps / 2.0);
  return e2 / (n * (e2 - 1.0) * (e2 - 1.0));
}

namespace {

double SueKeepProbability(double eps) {
  double e2 = std::exp(eps / 2.0);
  return e2 / (1.0 + e2);
}

}  // namespace

SueAggregateNoiser::SueAggregateNoiser(uint64_t n, double eps)
    : n_(static_cast<int64_t>(n)),
      p_(SueKeepProbability(eps)),
      zero_cell_(static_cast<int64_t>(n), 1.0 - SueKeepProbability(eps)) {}

SueOracle::SueOracle(uint64_t domain, double eps, Mode mode)
    : FrequencyOracle(domain, eps),
      mode_(mode),
      true_counts_(mode == Mode::kSimulated ? domain : 0, 0),
      noisy_counts_(domain, 0) {
  LDP_CHECK_GE(domain, 1u);
}

double SueOracle::KeepProbability() const {
  double e2 = std::exp(eps_ / 2.0);
  return e2 / (1.0 + e2);
}

double SueOracle::ReportBits() const { return static_cast<double>(domain_); }

double SueOracle::EstimatorVariance() const {
  if (reports_ == 0) return std::numeric_limits<double>::infinity();
  return SueVariance(eps_, static_cast<double>(reports_));
}

void SueOracle::SubmitValue(uint64_t value, Rng& rng) {
  LDP_CHECK_LT(value, domain_);
  LDP_CHECK_MSG(!finalized_, "SubmitValue after Finalize");
  if (mode_ == Mode::kSimulated) {
    ++true_counts_[value];
  } else {
    const double p = KeepProbability();
    for (uint64_t j = 0; j < domain_; ++j) {
      double p_one = (j == value) ? p : 1.0 - p;
      if (rng.Bernoulli(p_one)) {
        ++noisy_counts_[j];
      }
    }
  }
  ++reports_;
}

void SueOracle::SubmitBatch(std::span<const uint64_t> values, Rng& rng) {
  LDP_CHECK_MSG(!finalized_, "SubmitBatch after Finalize");
  if (mode_ == Mode::kSimulated) {
    // As with OUE, the simulated path is randomness-free per user.
    for (uint64_t value : values) {
      LDP_CHECK_LT(value, domain_);
      ++true_counts_[value];
    }
    reports_ += values.size();
  } else {
    for (uint64_t value : values) {
      SubmitValue(value, rng);
    }
  }
}

void SueOracle::Finalize(Rng& rng) {
  if (mode_ != Mode::kSimulated || finalized_) {
    finalized_ = true;
    return;
  }
  const SueAggregateNoiser noiser(reports_, eps_);
  for (uint64_t j = 0; j < domain_; ++j) {
    noisy_counts_[j] = noiser.NoisyCount(true_counts_[j], rng);
  }
  finalized_ = true;
}

std::vector<double> SueOracle::EstimateFractions() const {
  LDP_CHECK_MSG(mode_ == Mode::kExact || finalized_,
                "simulated SUE requires Finalize() before estimation");
  std::vector<double> est(domain_, 0.0);
  if (reports_ == 0) return est;
  const double p = KeepProbability();
  const double q = 1.0 - p;
  const double n = static_cast<double>(reports_);
  for (uint64_t j = 0; j < domain_; ++j) {
    est[j] = (static_cast<double>(noisy_counts_[j]) / n - q) / (p - q);
  }
  return est;
}

std::unique_ptr<FrequencyOracle> SueOracle::CloneEmpty() const {
  return std::make_unique<SueOracle>(domain_, eps_, mode_);
}

void SueOracle::MergeFrom(const FrequencyOracle& other) {
  CheckMergeCompatible(other);
  const auto* o = dynamic_cast<const SueOracle*>(&other);
  LDP_CHECK_MSG(o != nullptr, "MergeFrom requires a SueOracle");
  LDP_CHECK(o->mode_ == mode_);
  LDP_CHECK_MSG(!finalized_ && !o->finalized_,
                "cannot merge finalized SUE aggregates");
  for (uint64_t j = 0; j < domain_; ++j) {
    noisy_counts_[j] += o->noisy_counts_[j];
    if (mode_ == Mode::kSimulated) {
      true_counts_[j] += o->true_counts_[j];
    }
  }
  reports_ += o->reports_;
}

}  // namespace ldp
