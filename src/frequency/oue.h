// Optimized Unary Encoding (Wang et al., USENIX Security 2017).
//
// The user's value is one-hot encoded over D bits; the 1-bit is kept with
// probability 1/2 and every 0-bit is flipped to 1 with probability
// 1/(1 + e^eps) (paper Section 3.2). The asymmetric flip probabilities
// minimize estimation variance for large D, achieving the shared bound V_F.
//
// Two submission paths are provided:
//  * kExact    — per-user simulation flipping all D bits (O(D)/user), the
//                real protocol.
//  * kSimulated — the paper's §5 shortcut: accumulate exact counts and draw
//                the aggregate noisy count per item as
//                Bino(count_j, 1/2) + Bino(N - count_j, 1/(1+e^eps))
//                at Finalize() time. Statistically identical to kExact at
//                the aggregator, and O(D) total instead of O(N D).

#ifndef LDPRANGE_FREQUENCY_OUE_H_
#define LDPRANGE_FREQUENCY_OUE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/binomial.h"
#include "frequency/frequency_oracle.h"

namespace ldp {

/// The §5 aggregate noise model for simulated OUE, factored out so
/// OueOracle::Finalize and the deferred HierarchicalGrid decode draw the
/// SAME noise stream for the same (counts, rng) — the bit-identical
/// eager-vs-deferred contract. `n` is the total report count of the
/// aggregate being noised.
class OueAggregateNoiser {
 public:
  OueAggregateNoiser(uint64_t n, double eps);

  /// Noisy count for a cell with `ones` true ones:
  /// Bino(ones, 1/2) + Bino(n - ones, q). Empty cells (the overwhelming
  /// majority at range-query scale) take the precomputed Bino(n, q)
  /// sampler's O(1) fast path.
  uint64_t NoisyCount(uint64_t ones, Rng& rng) const {
    if (ones == 0) return static_cast<uint64_t>(zero_cell_.Sample(rng));
    return static_cast<uint64_t>(
        SampleBinomial(static_cast<int64_t>(ones), 0.5, rng) +
        SampleBinomial(n_ - static_cast<int64_t>(ones), q_, rng));
  }

  /// Debiased fraction estimate for a noisy count (OUE: p = 1/2).
  double Estimate(uint64_t noisy) const {
    return (static_cast<double>(noisy) / static_cast<double>(n_) - q_) /
           (0.5 - q_);
  }

 private:
  int64_t n_;
  double q_;
  BinomialSampler zero_cell_;
};

/// OUE frequency oracle.
class OueOracle final : public FrequencyOracle {
 public:
  enum class Mode { kExact, kSimulated };

  OueOracle(uint64_t domain, double eps, Mode mode);

  Mode mode() const { return mode_; }

  double ReportBits() const override;
  double EstimatorVariance() const override;
  void SubmitValue(uint64_t value, Rng& rng) override;
  void SubmitBatch(std::span<const uint64_t> values, Rng& rng) override;
  void Finalize(Rng& rng) override;
  std::vector<double> EstimateFractions() const override;
  std::unique_ptr<FrequencyOracle> CloneEmpty() const override;
  void MergeFrom(const FrequencyOracle& other) override;

  /// Probability a true 1-bit is reported as 1 (always 1/2 for OUE).
  double KeepProbability() const { return 0.5; }
  /// Probability a true 0-bit is reported as 1: 1/(1 + e^eps).
  double FlipProbability() const;

 private:
  Mode mode_;
  bool finalized_ = false;
  // kExact: noisy_counts_ holds the per-bit sums of noisy reports.
  // kSimulated: true_counts_ holds exact counts until Finalize() draws the
  // binomial aggregate into noisy_counts_.
  std::vector<uint64_t> true_counts_;
  std::vector<uint64_t> noisy_counts_;
};

}  // namespace ldp

#endif  // LDPRANGE_FREQUENCY_OUE_H_
