// Symmetric Unary Encoding (SUE) — "basic RAPPOR" (Erlingsson et al., CCS
// 2014), the per-bit-symmetric randomized response the paper's OUE
// primitive improves on.
//
// The one-hot vector is perturbed with the SAME randomized-response
// probability on 1-bits and 0-bits: each bit is kept with probability
// p = e^{eps/2} / (1 + e^{eps/2}) (the eps/2 arises because changing the
// input moves two bit positions). Per-item estimator variance is
//   V_SUE = e^{eps/2} / (N (e^{eps/2} - 1)^2),
// strictly worse than OUE's V_F for every eps > 0 — the gap the OUE-vs-SUE
// ablation in bench_ablation_design quantifies. Implemented with the same
// exact / binomial-simulated duality as OueOracle.

#ifndef LDPRANGE_FREQUENCY_SUE_H_
#define LDPRANGE_FREQUENCY_SUE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "frequency/frequency_oracle.h"

namespace ldp {

/// Exact per-item estimator variance of SUE (see header comment).
double SueVariance(double eps, double n);

/// SUE frequency oracle.
class SueOracle final : public FrequencyOracle {
 public:
  enum class Mode { kExact, kSimulated };

  SueOracle(uint64_t domain, double eps, Mode mode);

  Mode mode() const { return mode_; }

  /// Probability any bit is reported truthfully:
  /// e^{eps/2} / (1 + e^{eps/2}).
  double KeepProbability() const;

  double ReportBits() const override;
  double EstimatorVariance() const override;
  void SubmitValue(uint64_t value, Rng& rng) override;
  void SubmitBatch(std::span<const uint64_t> values, Rng& rng) override;
  void Finalize(Rng& rng) override;
  std::vector<double> EstimateFractions() const override;
  std::unique_ptr<FrequencyOracle> CloneEmpty() const override;
  void MergeFrom(const FrequencyOracle& other) override;

 private:
  Mode mode_;
  bool finalized_ = false;
  std::vector<uint64_t> true_counts_;
  std::vector<uint64_t> noisy_counts_;
};

}  // namespace ldp

#endif  // LDPRANGE_FREQUENCY_SUE_H_
