// Symmetric Unary Encoding (SUE) — "basic RAPPOR" (Erlingsson et al., CCS
// 2014), the per-bit-symmetric randomized response the paper's OUE
// primitive improves on.
//
// The one-hot vector is perturbed with the SAME randomized-response
// probability on 1-bits and 0-bits: each bit is kept with probability
// p = e^{eps/2} / (1 + e^{eps/2}) (the eps/2 arises because changing the
// input moves two bit positions). Per-item estimator variance is
//   V_SUE = e^{eps/2} / (N (e^{eps/2} - 1)^2),
// strictly worse than OUE's V_F for every eps > 0 — the gap the OUE-vs-SUE
// ablation in bench_ablation_design quantifies. Implemented with the same
// exact / binomial-simulated duality as OueOracle.

#ifndef LDPRANGE_FREQUENCY_SUE_H_
#define LDPRANGE_FREQUENCY_SUE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/binomial.h"
#include "frequency/frequency_oracle.h"

namespace ldp {

/// Exact per-item estimator variance of SUE (see header comment).
double SueVariance(double eps, double n);

/// Aggregate noise model for simulated SUE; the SUE counterpart of
/// OueAggregateNoiser (see oue.h) with symmetric keep probability
/// p = e^{eps/2} / (1 + e^{eps/2}).
class SueAggregateNoiser {
 public:
  SueAggregateNoiser(uint64_t n, double eps);

  /// Bino(ones, p) + Bino(n - ones, 1 - p); empty cells use the
  /// precomputed Bino(n, 1 - p) sampler.
  uint64_t NoisyCount(uint64_t ones, Rng& rng) const {
    if (ones == 0) return static_cast<uint64_t>(zero_cell_.Sample(rng));
    return static_cast<uint64_t>(
        SampleBinomial(static_cast<int64_t>(ones), p_, rng) +
        SampleBinomial(n_ - static_cast<int64_t>(ones), 1.0 - p_, rng));
  }

  /// Debiased fraction estimate for a noisy count (q = 1 - p).
  double Estimate(uint64_t noisy) const {
    const double q = 1.0 - p_;
    return (static_cast<double>(noisy) / static_cast<double>(n_) - q) /
           (p_ - q);
  }

 private:
  int64_t n_;
  double p_;
  BinomialSampler zero_cell_;
};

/// SUE frequency oracle.
class SueOracle final : public FrequencyOracle {
 public:
  enum class Mode { kExact, kSimulated };

  SueOracle(uint64_t domain, double eps, Mode mode);

  Mode mode() const { return mode_; }

  /// Probability any bit is reported truthfully:
  /// e^{eps/2} / (1 + e^{eps/2}).
  double KeepProbability() const;

  double ReportBits() const override;
  double EstimatorVariance() const override;
  void SubmitValue(uint64_t value, Rng& rng) override;
  void SubmitBatch(std::span<const uint64_t> values, Rng& rng) override;
  void Finalize(Rng& rng) override;
  std::vector<double> EstimateFractions() const override;
  std::unique_ptr<FrequencyOracle> CloneEmpty() const override;
  void MergeFrom(const FrequencyOracle& other) override;

 private:
  Mode mode_;
  bool finalized_ = false;
  std::vector<uint64_t> true_counts_;
  std::vector<uint64_t> noisy_counts_;
};

}  // namespace ldp

#endif  // LDPRANGE_FREQUENCY_SUE_H_
