#include "frequency/frequency_oracle.h"

#include <cmath>

#include "common/check.h"
#include "frequency/grr.h"
#include "frequency/hrr.h"
#include "frequency/olh.h"
#include "frequency/oue.h"
#include "frequency/sue.h"

namespace ldp {

double OracleVariance(double eps, double n) {
  LDP_CHECK(eps > 0.0);
  LDP_CHECK(n > 0.0);
  double e = std::exp(eps);
  return 4.0 * e / (n * (e - 1.0) * (e - 1.0));
}

double HrrExactVariance(double eps, double n) {
  LDP_CHECK(eps > 0.0);
  LDP_CHECK(n > 0.0);
  double e = std::exp(eps);
  return (e + 1.0) * (e + 1.0) / (n * (e - 1.0) * (e - 1.0));
}

std::string OracleKindName(OracleKind kind) {
  switch (kind) {
    case OracleKind::kGrr:
      return "GRR";
    case OracleKind::kOue:
      return "OUE";
    case OracleKind::kOueSimulated:
      return "OUE(sim)";
    case OracleKind::kOlh:
      return "OLH";
    case OracleKind::kHrr:
      return "HRR";
    case OracleKind::kSue:
      return "SUE";
    case OracleKind::kSueSimulated:
      return "SUE(sim)";
  }
  return "unknown";
}

FrequencyOracle::FrequencyOracle(uint64_t domain, double eps)
    : domain_(domain), eps_(eps) {
  LDP_CHECK_GE(domain, 1u);
  LDP_CHECK_MSG(eps > 0.0, "epsilon must be positive");
}

void FrequencyOracle::SubmitSignedValue(uint64_t /*value*/, int /*sign*/,
                                        Rng& /*rng*/) {
  LDP_CHECK_MSG(false, "this oracle does not support signed values");
}

void FrequencyOracle::SubmitBatch(std::span<const uint64_t> values, Rng& rng) {
  ReserveReports(values.size());
  for (uint64_t value : values) {
    SubmitValue(value, rng);
  }
}

void FrequencyOracle::ReserveReports(uint64_t /*expected*/) {}

void FrequencyOracle::Finalize(Rng& /*rng*/) {}

void FrequencyOracle::CheckMergeCompatible(
    const FrequencyOracle& other) const {
  LDP_CHECK(other.domain_ == domain_);
  LDP_CHECK(other.eps_ == eps_);
}

std::unique_ptr<FrequencyOracle> MakeOracle(OracleKind kind, uint64_t domain,
                                            double eps) {
  switch (kind) {
    case OracleKind::kGrr:
      return std::make_unique<GrrOracle>(domain, eps);
    case OracleKind::kOue:
      return std::make_unique<OueOracle>(domain, eps, OueOracle::Mode::kExact);
    case OracleKind::kOueSimulated:
      return std::make_unique<OueOracle>(domain, eps,
                                         OueOracle::Mode::kSimulated);
    case OracleKind::kOlh:
      return std::make_unique<OlhOracle>(domain, eps);
    case OracleKind::kHrr:
      return std::make_unique<HrrOracle>(domain, eps);
    case OracleKind::kSue:
      return std::make_unique<SueOracle>(domain, eps, SueOracle::Mode::kExact);
    case OracleKind::kSueSimulated:
      return std::make_unique<SueOracle>(domain, eps,
                                         SueOracle::Mode::kSimulated);
  }
  LDP_CHECK_MSG(false, "unknown oracle kind");
  return nullptr;
}

}  // namespace ldp
