// libFuzzer harness for FlatHrrServer's serialized ingestion paths.

#include "fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return ldp::fuzz::FuzzFlatAbsorb(data, size);
}
