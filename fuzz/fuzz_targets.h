// Fuzz entry points for the wire-protocol report path.
//
// Each function has the libFuzzer TestOneInput contract — consume
// arbitrary bytes, return 0, and crash (trap) only on a genuine bug —
// but lives in a plain static library so the same code runs under three
// harnesses:
//
//   * libFuzzer executables (fuzz/fuzz_*.cc, clang -fsanitize=fuzzer),
//   * the standalone file-replay driver (fuzz/standalone_driver.cc, any
//     compiler — used on toolchains without libFuzzer),
//   * the deterministic corpus-replay GoogleTest
//     (tests/fuzz_regression_test.cc), which turns every checked-in
//     corpus file into a permanent CTest regression.
//
// The targets assert parser totality (never crash, never read OOB — the
// sanitizers see to that) and semantic invariants: whatever parses must
// be in-spec, and a server that ingested arbitrary bytes must still
// finalize and answer queries with finite numbers.

#ifndef LDPRANGE_FUZZ_FUZZ_TARGETS_H_
#define LDPRANGE_FUZZ_FUZZ_TARGETS_H_

#include <cstddef>
#include <cstdint>

namespace ldp::fuzz {

/// DecodeEnvelope plus every typed parser (single, batch, oracle
/// reports, stats plane, and the distributed fan-in state plane) over
/// the same bytes; a snapshot that frames is additionally pushed
/// through MergeSerializedState on one server of every mechanism
/// family.
int FuzzDecodeEnvelope(const uint8_t* data, size_t size);

/// FlatHrrServer::AbsorbSerialized + AbsorbBatchSerialized + Finalize.
int FuzzFlatAbsorb(const uint8_t* data, size_t size);

/// HaarHrrServer::AbsorbSerialized + AbsorbBatchSerialized + Finalize.
int FuzzHaarAbsorb(const uint8_t* data, size_t size);

/// TreeHrrServer::AbsorbSerialized + AbsorbBatchSerialized + Finalize.
int FuzzTreeAbsorb(const uint8_t* data, size_t size);

/// AheadServer across both phase eras: absorb before BuildTree (phase-1
/// era), again after (phase-2 era), batch ingest, ParseAheadTree
/// totality, then Finalize + query.
int FuzzAheadAbsorb(const uint8_t* data, size_t size);

/// MultiDimServer::AbsorbSerialized + AbsorbBatchSerialized + Finalize +
/// box query, plus totality of the multidim report/batch/query parsers.
int FuzzMultiDimAbsorb(const uint8_t* data, size_t size);

/// AggregatorService fed the bytes as a concatenated inbound message
/// stream (stream begin/chunk/end, query requests, junk): session
/// bookkeeping must stay consistent, every enqueued chunk must drain,
/// and both hosted servers must still finalize and answer a wire query
/// with a parseable, non-NaN response.
int FuzzStreamSession(const uint8_t* data, size_t size);

}  // namespace ldp::fuzz

#endif  // LDPRANGE_FUZZ_FUZZ_TARGETS_H_
