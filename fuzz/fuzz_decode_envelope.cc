// libFuzzer harness for DecodeEnvelope and every typed wire parser.

#include "fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return ldp::fuzz::FuzzDecodeEnvelope(data, size);
}
