// libFuzzer harness for MultiDimServer's serialized ingestion paths and
// the multidim wire parsers.

#include "fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return ldp::fuzz::FuzzMultiDimAbsorb(data, size);
}
