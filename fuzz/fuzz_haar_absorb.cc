// libFuzzer harness for HaarHrrServer's serialized ingestion paths.

#include "fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return ldp::fuzz::FuzzHaarAbsorb(data, size);
}
