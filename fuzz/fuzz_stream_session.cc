// libFuzzer harness for the aggregator service's streaming ingestion and
// query plane (sessions, chunk reassembly, worker-pool drain, typed
// query responses).

#include "fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return ldp::fuzz::FuzzStreamSession(data, size);
}
