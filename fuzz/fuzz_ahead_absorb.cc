// libFuzzer harness for AheadServer's two-phase serialized ingestion.

#include "fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return ldp::fuzz::FuzzAheadAbsorb(data, size);
}
