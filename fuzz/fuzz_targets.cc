#include "fuzz_targets.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <vector>

#include "obs/stats_wire.h"
#include "protocol/ahead_protocol.h"
#include "protocol/envelope.h"
#include "protocol/flat_protocol.h"
#include "protocol/haar_protocol.h"
#include "protocol/multidim_protocol.h"
#include "protocol/oracle_wire.h"
#include "protocol/tree_protocol.h"
#include "service/aggregator_service.h"
#include "service/server_factory.h"
#include "service/state_wire.h"
#include "service/stream_wire.h"

// Semantic invariant check: unlike assert() it survives NDEBUG builds,
// and unlike LDP_CHECK it cannot be mistaken for input validation — a
// trap here is always a parser bug, never "the fuzzer found bad input".
#define LDP_FUZZ_ASSERT(cond) \
  do {                        \
    if (!(cond)) __builtin_trap(); \
  } while (0)

namespace ldp::fuzz {

namespace {

using protocol::Envelope;
using protocol::ParseError;

std::span<const uint8_t> AsSpan(const uint8_t* data, size_t size) {
  return std::span<const uint8_t>(data, size);
}

}  // namespace

int FuzzDecodeEnvelope(const uint8_t* data, size_t size) {
  std::span<const uint8_t> bytes = AsSpan(data, size);

  Envelope env;
  ParseError err = protocol::DecodeEnvelope(bytes, &env);
  if (err == ParseError::kOk) {
    LDP_FUZZ_ASSERT(env.version == protocol::kWireVersionV2);
    LDP_FUZZ_ASSERT(
        protocol::IsKnownMechanismTag(static_cast<uint8_t>(env.mechanism)));
    LDP_FUZZ_ASSERT(env.payload.size() ==
                    bytes.size() - protocol::kEnvelopeHeaderSize);
    LDP_FUZZ_ASSERT(protocol::MechanismTagName(env.mechanism) != "?");
  }
  LDP_FUZZ_ASSERT(protocol::ParseErrorName(err) != "?");

  // Every typed parser must be total over the same bytes, and whatever
  // parses must be in-spec.
  HrrReport flat;
  if (protocol::ParseHrrReport(bytes, &flat)) {
    LDP_FUZZ_ASSERT(flat.sign == 1 || flat.sign == -1);
  }
  protocol::HaarHrrReport haar;
  if (protocol::ParseHaarHrrReport(bytes, &haar)) {
    LDP_FUZZ_ASSERT(haar.level >= 1);
    LDP_FUZZ_ASSERT(haar.inner.sign == 1 || haar.inner.sign == -1);
  }
  protocol::TreeHrrReport tree;
  if (protocol::ParseTreeHrrReport(bytes, &tree)) {
    LDP_FUZZ_ASSERT(tree.level >= 1);
    LDP_FUZZ_ASSERT(tree.inner.sign == 1 || tree.inner.sign == -1);
  }

  std::vector<HrrReport> flat_batch;
  uint64_t malformed = 0;
  if (protocol::ParseHrrReportBatch(bytes, &flat_batch, &malformed) ==
      ParseError::kOk) {
    for (const HrrReport& r : flat_batch) {
      LDP_FUZZ_ASSERT(r.sign == 1 || r.sign == -1);
    }
    LDP_FUZZ_ASSERT(flat_batch.size() + malformed <= bytes.size());
  }
  std::vector<protocol::HaarHrrReport> haar_batch;
  if (protocol::ParseHaarHrrReportBatch(bytes, &haar_batch) ==
      ParseError::kOk) {
    for (const protocol::HaarHrrReport& r : haar_batch) {
      LDP_FUZZ_ASSERT(r.level >= 1);
    }
  }
  std::vector<protocol::TreeHrrReport> tree_batch;
  if (protocol::ParseTreeHrrReportBatch(bytes, &tree_batch) ==
      ParseError::kOk) {
    for (const protocol::TreeHrrReport& r : tree_batch) {
      LDP_FUZZ_ASSERT(r.level >= 1);
    }
  }

  protocol::AheadWireReport ahead;
  if (protocol::ParseAheadReport(bytes, &ahead)) {
    LDP_FUZZ_ASSERT(ahead.phase == 1 || ahead.phase == 2);
    LDP_FUZZ_ASSERT(ahead.level >= 1);
  }
  std::vector<protocol::AheadWireReport> ahead_batch;
  if (protocol::ParseAheadReportBatch(bytes, &ahead_batch) ==
      ParseError::kOk) {
    for (const protocol::AheadWireReport& r : ahead_batch) {
      LDP_FUZZ_ASSERT(r.phase == 1 || r.phase == 2);
    }
  }
  {
    uint64_t domain = 0;
    uint64_t fanout = 0;
    std::optional<AdaptiveTree> tree;
    if (protocol::ParseAheadTree(bytes, &domain, &fanout, &tree) ==
        ParseError::kOk) {
      LDP_FUZZ_ASSERT(tree.has_value());
      LDP_FUZZ_ASSERT(fanout >= 2 &&
                      fanout <= protocol::kMaxAheadTreeFanout);
      LDP_FUZZ_ASSERT(tree->nodes().size() <=
                      protocol::kMaxAheadTreeNodes);
      LDP_FUZZ_ASSERT(tree->num_levels() >= 1);
    }
  }

  obs::StatsQuery stats_query;
  if (obs::ParseStatsQuery(bytes, &stats_query) == ParseError::kOk) {
    // The query payload is fixed-width with no slack, so serialization
    // must reproduce the input exactly.
    std::vector<uint8_t> reencoded = obs::SerializeStatsQuery(stats_query);
    LDP_FUZZ_ASSERT(std::equal(reencoded.begin(), reencoded.end(),
                               bytes.begin(), bytes.end()));
  }
  obs::StatsResponse stats_response;
  if (obs::ParseStatsResponse(bytes, &stats_response) == ParseError::kOk) {
    LDP_FUZZ_ASSERT(stats_response.format_version ==
                    obs::kStatsFormatVersion);
    LDP_FUZZ_ASSERT(obs::StatsStatusName(stats_response.status) != "?");
    for (const obs::HistogramValue& h : stats_response.metrics.histograms) {
      // Derived-count coherence and quantile sanity on whatever parsed.
      uint64_t bucket_total = 0;
      for (uint64_t b : h.histogram.buckets) bucket_total += b;
      LDP_FUZZ_ASSERT(h.histogram.count == bucket_total);
      if (h.histogram.count > 0) {
        uint64_t p50 = h.histogram.Quantile(0.50);
        LDP_FUZZ_ASSERT(p50 >= h.histogram.min && p50 <= h.histogram.max);
      }
    }
    // Round-trip fixpoint (byte identity with the input would be too
    // strong: ReadVarU64 tolerates non-minimal varints, the serializer
    // always emits minimal ones): re-serializing and re-parsing must
    // reproduce the same message, and that wire form must be stable.
    std::vector<uint8_t> reencoded =
        obs::SerializeStatsResponse(stats_response);
    obs::StatsResponse reparsed;
    LDP_FUZZ_ASSERT(obs::ParseStatsResponse(reencoded, &reparsed) ==
                    ParseError::kOk);
    LDP_FUZZ_ASSERT(reparsed == stats_response);
    LDP_FUZZ_ASSERT(obs::SerializeStatsResponse(reparsed) == reencoded);
  }

  // State plane (distributed fan-in): the three typed parsers must be
  // total, and a snapshot that frames must be totally *handled* by every
  // mechanism family — merged when header+body match the target's exact
  // configuration, a typed error otherwise, never a crash.
  {
    service::StateSnapshotHeader snapshot;
    if (service::ParseStateSnapshot(bytes, &snapshot) == ParseError::kOk) {
      LDP_FUZZ_ASSERT(
          service::IsKnownStateKind(static_cast<uint8_t>(snapshot.kind)));
      LDP_FUZZ_ASSERT(service::StateKindName(snapshot.kind) != "?");
      LDP_FUZZ_ASSERT(snapshot.domain >= 2 &&
                      snapshot.domain <= service::kMaxStateDomain);
      LDP_FUZZ_ASSERT(std::isfinite(snapshot.eps) && snapshot.eps > 0.0);
      std::vector<service::ServerSpec> specs =
          service::AllServerSpecs(/*domain=*/64, /*eps=*/1.0);
      service::ServerSpec grid;
      grid.kind = service::ServerKind::kGrid;
      grid.domain = 16;
      grid.dimensions = 2;
      grid.fanout = 2;
      specs.push_back(grid);
      for (const service::ServerSpec& spec : specs) {
        auto server = service::MakeAggregatorServer(spec);
        service::MergeStatus status = server->MergeSerializedState(bytes);
        LDP_FUZZ_ASSERT(service::MergeStatusName(status) != "?");
        if (status == service::MergeStatus::kOk) {
          // A merged snapshot must leave the server queryable, and its
          // restored state must re-serialize canonically: merging that
          // re-serialization into a fresh twin succeeds.
          auto twin = service::MakeAggregatorServer(spec);
          LDP_FUZZ_ASSERT(twin->MergeSerializedState(
                              server->SerializeState()) ==
                          service::MergeStatus::kOk);
          server->Finalize();
          LDP_FUZZ_ASSERT(
              !std::isnan(server->RangeQuery(0, server->domain() - 1)));
        }
      }
    }
  }
  {
    service::StateMergeRequest merge;
    if (service::ParseStateMerge(bytes, &merge) == ParseError::kOk) {
      LDP_FUZZ_ASSERT(merge.shard_count >= 1 &&
                      merge.shard_count <= service::kMaxMergeShards);
      LDP_FUZZ_ASSERT(merge.shard_index < merge.shard_count);
      LDP_FUZZ_ASSERT((merge.flags & ~service::kMergeFlagFinalize) == 0);
      // The nested bytes must at least re-frame as a snapshot envelope.
      Envelope nested;
      LDP_FUZZ_ASSERT(protocol::DecodeEnvelope(merge.snapshot, &nested) ==
                      ParseError::kOk);
      LDP_FUZZ_ASSERT(nested.mechanism ==
                      protocol::MechanismTag::kStateSnapshot);
    }
  }
  {
    service::StateMergeResponse ack;
    if (service::ParseStateMergeResponse(bytes, &ack) == ParseError::kOk) {
      LDP_FUZZ_ASSERT(
          service::IsKnownMergeStatus(static_cast<uint8_t>(ack.status)));
      LDP_FUZZ_ASSERT(service::MergeStatusName(ack.status) != "?");
      // Round-trip fixpoint (byte identity would be too strong: the
      // parser tolerates non-minimal varints, the serializer emits
      // minimal ones).
      std::vector<uint8_t> reencoded =
          service::SerializeStateMergeResponse(ack);
      service::StateMergeResponse reparsed;
      LDP_FUZZ_ASSERT(service::ParseStateMergeResponse(
                          reencoded, &reparsed) == ParseError::kOk);
      LDP_FUZZ_ASSERT(reparsed == ack);
    }
  }

  protocol::GrrWireReport grr;
  (void)protocol::ParseGrrReport(bytes, &grr);
  protocol::OlhWireReport olh;
  (void)protocol::ParseOlhReport(bytes, &olh);
  protocol::UnaryWireReport unary;
  if (protocol::ParseUnaryReport(protocol::MechanismTag::kOue, bytes,
                                 &unary) == ParseError::kOk) {
    LDP_FUZZ_ASSERT(unary.packed.size() == (unary.num_bits + 7) / 8);
  }
  if (protocol::ParseUnaryReport(protocol::MechanismTag::kSue, bytes,
                                 &unary) == ParseError::kOk) {
    LDP_FUZZ_ASSERT(unary.packed.size() == (unary.num_bits + 7) / 8);
  }
  return 0;
}

namespace {

// Shared absorb-path shape: feed the bytes down both the single-report
// and batch ingestion paths, then finalize and query. The accounting
// invariant — every byte buffer is either accepted or rejected, exactly
// once per ingestion call — holds for all three servers.
template <typename Server>
int FuzzAbsorb(Server& server, std::span<const uint8_t> bytes,
               uint64_t domain) {
  server.AbsorbSerialized(bytes);
  uint64_t ingested_once = server.accepted_reports() +
                           server.rejected_reports();
  LDP_FUZZ_ASSERT(ingested_once == 1);

  uint64_t accepted = 0;
  protocol::ParseError err = server.AbsorbBatchSerialized(bytes, &accepted);
  if (err != protocol::ParseError::kOk) {
    LDP_FUZZ_ASSERT(accepted == 0);
  }
  LDP_FUZZ_ASSERT(server.accepted_reports() >= accepted);

  server.Finalize();
  double total = server.RangeQuery(0, domain - 1);
  LDP_FUZZ_ASSERT(std::isfinite(total));
  return 0;
}

}  // namespace

int FuzzFlatAbsorb(const uint8_t* data, size_t size) {
  protocol::FlatHrrServer server(/*domain=*/64, /*eps=*/1.0);
  return FuzzAbsorb(server, AsSpan(data, size), 64);
}

int FuzzHaarAbsorb(const uint8_t* data, size_t size) {
  protocol::HaarHrrServer server(/*domain=*/64, /*eps=*/1.0);
  return FuzzAbsorb(server, AsSpan(data, size), 64);
}

int FuzzTreeAbsorb(const uint8_t* data, size_t size) {
  protocol::TreeHrrServer server(/*domain=*/128, /*fanout=*/4,
                                 /*eps=*/1.0);
  return FuzzAbsorb(server, AsSpan(data, size), 128);
}

int FuzzAheadAbsorb(const uint8_t* data, size_t size) {
  std::span<const uint8_t> bytes = AsSpan(data, size);
  protocol::AheadServer server(/*domain=*/64, /*fanout=*/4, /*eps=*/1.0);

  // Phase-1 era: exactly one accept-or-reject per single ingestion call.
  server.AbsorbSerialized(bytes);
  LDP_FUZZ_ASSERT(server.accepted_reports() + server.rejected_reports() ==
                  1);

  // The phase transition must be well-defined whatever arrived, and its
  // broadcast must parse back (server and client agree on the format).
  std::vector<uint8_t> tree_msg = server.BuildTree();
  {
    uint64_t domain = 0;
    uint64_t fanout = 0;
    std::optional<AdaptiveTree> tree;
    LDP_FUZZ_ASSERT(protocol::ParseAheadTree(tree_msg, &domain, &fanout,
                                             &tree) == ParseError::kOk);
    LDP_FUZZ_ASSERT(domain == 64 && fanout == 4);
  }

  // Phase-2 era: the same bytes again (a phase-1 report is now stale and
  // must be rejected, a forged phase-2 report range-checked), then the
  // batch path.
  server.AbsorbSerialized(bytes);
  uint64_t accepted = 0;
  ParseError err = server.AbsorbBatchSerialized(bytes, &accepted);
  if (err != ParseError::kOk) {
    LDP_FUZZ_ASSERT(accepted == 0);
  }
  LDP_FUZZ_ASSERT(server.accepted_reports() >= accepted);

  server.Finalize();
  double total = server.RangeQuery(0, 63);
  LDP_FUZZ_ASSERT(std::isfinite(total));
  for (double f : server.EstimateFrequencies()) {
    LDP_FUZZ_ASSERT(std::isfinite(f));
  }
  return 0;
}

int FuzzMultiDimAbsorb(const uint8_t* data, size_t size) {
  std::span<const uint8_t> bytes = AsSpan(data, size);

  // Typed parser totality: whatever parses must be in-spec.
  protocol::MultiDimReport report;
  if (protocol::ParseMultiDimReport(bytes, &report) == ParseError::kOk) {
    LDP_FUZZ_ASSERT(!report.levels.empty());
    LDP_FUZZ_ASSERT(report.levels.size() <= protocol::kMaxWireDimensions);
    bool nontrivial = false;
    for (uint8_t level : report.levels) nontrivial |= level != 0;
    LDP_FUZZ_ASSERT(nontrivial);
  }
  {
    std::vector<protocol::MultiDimReport> reports;
    uint64_t malformed = 0;
    if (protocol::ParseMultiDimReportBatch(bytes, &reports, &malformed) ==
        ParseError::kOk) {
      for (const protocol::MultiDimReport& r : reports) {
        LDP_FUZZ_ASSERT(!r.levels.empty());
        LDP_FUZZ_ASSERT(r.levels.size() == reports.front().levels.size());
      }
    }
  }
  {
    service::MultiDimQueryRequest request;
    if (ParseMultiDimQueryRequest(bytes, &request) == ParseError::kOk) {
      LDP_FUZZ_ASSERT(request.dimensions >= 1);
      LDP_FUZZ_ASSERT(request.dimensions <= protocol::kMaxWireDimensions);
      for (const service::QueryBox& box : request.boxes) {
        LDP_FUZZ_ASSERT(box.axes.size() == request.dimensions);
      }
    }
  }

  // Server ingestion contract, mirroring FuzzAbsorb for the 1-D servers.
  protocol::MultiDimServer server(/*domain_per_dim=*/16, /*dimensions=*/2,
                                  /*eps=*/1.0);
  server.AbsorbSerialized(bytes);
  LDP_FUZZ_ASSERT(server.accepted_reports() + server.rejected_reports() ==
                  1);
  uint64_t accepted = 0;
  ParseError err = server.AbsorbBatchSerialized(bytes, &accepted);
  if (err != ParseError::kOk) {
    LDP_FUZZ_ASSERT(accepted == 0);
  }
  LDP_FUZZ_ASSERT(server.accepted_reports() >= accepted);

  server.Finalize();
  const AxisInterval box[2] = {{0, 15}, {3, 12}};
  LDP_FUZZ_ASSERT(std::isfinite(server.BoxQuery(box)));
  RangeEstimate est = server.BoxQueryWithUncertainty(box);
  LDP_FUZZ_ASSERT(std::isfinite(est.value));
  // Tuples that saw no reports advertise infinite variance on purpose,
  // so the envelope may be +inf here — but never NaN.
  LDP_FUZZ_ASSERT(!std::isnan(est.stddev));
  LDP_FUZZ_ASSERT(std::isfinite(server.RangeQuery(0, 15)));
  return 0;
}

int FuzzStreamSession(const uint8_t* data, size_t size) {
  std::span<const uint8_t> bytes = AsSpan(data, size);
  // Two hosted mechanism instances so server-id routing, concurrent
  // strands, and cross-mechanism chunk payloads are all reachable.
  service::AggregatorService svc(/*worker_threads=*/2);
  service::ServerSpec spec;
  spec.kind = service::ServerKind::kFlat;
  spec.domain = 64;
  spec.eps = 1.0;
  uint64_t flat_id = svc.AddServer(service::MakeAggregatorServer(spec));
  spec.kind = service::ServerKind::kTree;
  spec.domain = 128;
  uint64_t tree_id = svc.AddServer(service::MakeAggregatorServer(spec));

  // Walk the blob as the service's inbound byte stream: each framed
  // region is one message (its declared payload clipped to what is
  // present), unframeable regions advance a byte so every offset is
  // explored.
  size_t offset = 0;
  int handled = 0;
  while (offset < bytes.size() && handled < 64) {
    std::span<const uint8_t> rest = bytes.subspan(offset);
    size_t advance = 1;
    if (rest.size() >= protocol::kEnvelopeHeaderSize &&
        protocol::LooksLikeEnvelope(rest)) {
      uint32_t payload_len = 0;
      for (int i = 0; i < 4; ++i) {
        payload_len |= static_cast<uint32_t>(rest[4 + i]) << (8 * i);
      }
      size_t total = std::min(
          protocol::kEnvelopeHeaderSize + static_cast<size_t>(payload_len),
          rest.size());
      svc.HandleMessage(rest.first(total));
      ++handled;
      advance = total;
    }
    offset += advance;
  }
  svc.Drain();
  service::ServiceStats stats = svc.stats();
  LDP_FUZZ_ASSERT(stats.chunks_absorbed == stats.chunks_enqueued);

  // Whatever arrived, both servers finalize (unless a stream already
  // did) and answer over the wire with a parseable, non-NaN response.
  svc.FinalizeServer(flat_id);
  svc.FinalizeServer(tree_id);
  for (uint64_t id : {flat_id, tree_id}) {
    LDP_FUZZ_ASSERT(svc.server_finalized(id));
    service::RangeQueryRequest request;
    request.query_id = 1;
    request.server_id = id;
    request.intervals = {{0, svc.server(id).domain() - 1}, {3, 9}};
    std::vector<uint8_t> reply =
        svc.HandleMessage(service::SerializeRangeQueryRequest(request));
    service::RangeQueryResponse response;
    LDP_FUZZ_ASSERT(service::ParseRangeQueryResponse(reply, &response) ==
                    ParseError::kOk);
    LDP_FUZZ_ASSERT(response.status == service::QueryStatus::kOk);
    LDP_FUZZ_ASSERT(response.estimates.size() == 2);
    for (const service::IntervalEstimate& e : response.estimates) {
      // Estimates from arbitrary reports stay non-NaN; variance may be
      // +inf when zero reports were accepted.
      LDP_FUZZ_ASSERT(!std::isnan(e.estimate));
      LDP_FUZZ_ASSERT(!std::isnan(e.variance));
    }
  }
  return 0;
}

}  // namespace ldp::fuzz
