// Regenerates the checked-in seed corpus under fuzz/corpus/ from real
// encoded reports (fixed seeds, so the output is deterministic) plus a
// handful of hand-crafted near-valid frames that pin the parser's error
// branches. Usage: make_seed_corpus [corpus_dir]  (default: fuzz/corpus
// relative to the working directory).
//
// Every file written here is replayed on every CTest run by
// tests/fuzz_regression_test.cc, and is a starting point for the
// coverage-guided fuzzers.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/ahead.h"
#include "obs/metrics.h"
#include "obs/stats_wire.h"
#include "protocol/ahead_protocol.h"
#include "protocol/envelope.h"
#include "protocol/flat_protocol.h"
#include "protocol/haar_protocol.h"
#include "protocol/multidim_protocol.h"
#include "protocol/oracle_wire.h"
#include "protocol/tree_protocol.h"
#include "protocol/wire.h"
#include "service/server_factory.h"
#include "service/state_wire.h"
#include "service/stream_wire.h"

namespace {

using namespace ldp;           // NOLINT(build/namespaces)
using namespace ldp::protocol; // NOLINT(build/namespaces)

std::filesystem::path g_root;

void WriteFile(const std::string& dir, const std::string& name,
               const std::vector<uint8_t>& bytes) {
  std::filesystem::path path = g_root / dir / name;
  std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
}

// Replicates the fuzz-target server parameters (fuzz_targets.cc) so the
// absorb seeds exercise the accept path, not just rejection.
constexpr uint64_t kFlatDomain = 64;
constexpr uint64_t kHaarDomain = 64;
constexpr uint64_t kTreeDomain = 128;
constexpr uint64_t kTreeFanout = 4;
constexpr double kEps = 1.0;

void EmitFlat() {
  Rng rng(101);
  FlatHrrClient client(kFlatDomain, kEps);
  WriteFile("flat_absorb", "v2_single", client.EncodeSerialized(7, rng));
  std::vector<uint64_t> values = {1, 5, 9, 33, 63};
  WriteFile("flat_absorb", "v2_batch",
            client.EncodeUsersSerialized(values, rng));
  WriteFile("decode_envelope", "flat_single",
            client.EncodeSerialized(3, rng));
  // Valid frame, out-of-range coefficient: exercises the server-side
  // range rejection rather than the parser.
  WriteFile("flat_absorb", "v2_out_of_range",
            SerializeHrrReport(HrrReport{1u << 20, +1}));
  client.set_wire_version(kWireVersionV1);
  WriteFile("flat_absorb", "v1_single", client.EncodeSerialized(12, rng));
  WriteFile("decode_envelope", "flat_single_v1",
            client.EncodeSerialized(9, rng));
}

void EmitHaar() {
  Rng rng(202);
  HaarHrrClient client(kHaarDomain, kEps);
  WriteFile("haar_absorb", "v2_single", client.EncodeSerialized(20, rng));
  std::vector<uint64_t> values = {0, 8, 16, 32, 63};
  WriteFile("haar_absorb", "v2_batch",
            client.EncodeUsersSerialized(values, rng));
  WriteFile("decode_envelope", "haar_single",
            client.EncodeSerialized(5, rng));
  WriteFile("decode_envelope", "haar_batch",
            client.EncodeUsersSerialized(values, rng));
  client.set_wire_version(kWireVersionV1);
  WriteFile("haar_absorb", "v1_single", client.EncodeSerialized(40, rng));
  WriteFile("decode_envelope", "haar_single_v1",
            client.EncodeSerialized(33, rng));
}

void EmitTree() {
  Rng rng(303);
  TreeHrrClient client(kTreeDomain, kTreeFanout, kEps);
  WriteFile("tree_absorb", "v2_single", client.EncodeSerialized(100, rng));
  std::vector<uint64_t> values = {2, 31, 64, 90, 127};
  WriteFile("tree_absorb", "v2_batch",
            client.EncodeUsersSerialized(values, rng));
  WriteFile("decode_envelope", "tree_single",
            client.EncodeSerialized(11, rng));
  client.set_wire_version(kWireVersionV1);
  WriteFile("tree_absorb", "v1_single", client.EncodeSerialized(77, rng));
  WriteFile("decode_envelope", "tree_single_v1",
            client.EncodeSerialized(60, rng));
}

void EmitOracles() {
  Rng rng(404);
  WriteFile("decode_envelope", "grr",
            SerializeGrrReport(EncodeGrrReport(256, kEps, 37, rng)));
  WriteFile("decode_envelope", "oue",
            SerializeUnaryReport(MechanismTag::kOue,
                                 EncodeOueReport(100, kEps, 42, rng)));
  WriteFile("decode_envelope", "sue",
            SerializeUnaryReport(MechanismTag::kSue,
                                 EncodeSueReport(100, kEps, 17, rng)));
  WriteFile("decode_envelope", "olh",
            SerializeOlhReport(EncodeOlhReport(256, kEps, 99, rng)));
}

// Replicates FuzzAheadAbsorb's server parameters (domain 64, fanout 4,
// eps 1) so the phase-2 seeds land in the accept path of the tree the
// harness builds from them.
void EmitAhead() {
  Rng rng(606);
  AheadClient client(/*domain=*/64, /*fanout=*/4, kEps);
  std::vector<uint8_t> phase1 = client.EncodePhase1Serialized(20, rng);
  WriteFile("ahead_absorb", "v2_phase1", phase1);
  WriteFile("decode_envelope", "ahead_phase1", phase1);

  // The tree a report-free server would build (full split of 64/4): lets
  // the harness's second absorb pass exercise valid phase-2 ingestion,
  // and pins the kAheadTree format for the envelope fuzzer.
  AheadServer server(64, 4, kEps);
  std::vector<uint8_t> tree_msg = server.BuildTree();
  WriteFile("ahead_absorb", "v2_tree", tree_msg);
  WriteFile("decode_envelope", "ahead_tree", tree_msg);
  if (!client.AbsorbTreeDescription(tree_msg)) {
    std::fprintf(stderr, "ahead tree handoff failed\n");
    std::exit(1);
  }
  WriteFile("ahead_absorb", "v2_phase2",
            client.EncodePhase2Serialized(33, rng));
  std::vector<uint64_t> values = {0, 7, 21, 42, 63};
  std::vector<uint8_t> batch =
      client.EncodePhase2UsersSerialized(values, rng);
  WriteFile("ahead_absorb", "v2_batch", batch);
  WriteFile("decode_envelope", "ahead_batch", batch);

  // Forged node ids: past a phase-1 level's node count and past a
  // phase-2 frontier; both exercise the server-side range rejection.
  WriteFile("ahead_absorb", "v2_forged_phase1_node",
            SerializeAheadReport(AheadWireReport{1, 1, 1u << 20}));
  WriteFile("ahead_absorb", "v2_forged_phase2_node",
            SerializeAheadReport(AheadWireReport{2, 1, 1u << 20}));
  // Level 0 is structurally invalid in either phase (parser rejection).
  std::vector<uint8_t> bad_level =
      SerializeAheadReport(AheadWireReport{2, 3, 9});
  bad_level[kEnvelopeHeaderSize + 1] = 0;
  WriteFile("ahead_absorb", "v2_level_zero", bad_level);
  // Truncated mid-payload.
  std::vector<uint8_t> truncated(phase1.begin(), phase1.end() - 4);
  WriteFile("ahead_absorb", "v2_truncated", truncated);
  // Tree with an orphan split (depth-2 node whose parent is a leaf).
  std::vector<uint8_t> orphan_payload;
  AppendVarU64(orphan_payload, 64);
  AppendVarU64(orphan_payload, 4);
  AppendVarU64(orphan_payload, 2);
  AppendU8(orphan_payload, 0);
  AppendVarU64(orphan_payload, 0);
  AppendU8(orphan_payload, 2);
  AppendVarU64(orphan_payload, 5);
  WriteFile("ahead_absorb", "v2_tree_orphan_split",
            EncodeEnvelope(MechanismTag::kAheadTree, orphan_payload));
}

// Replicates FuzzMultiDimAbsorb's server parameters (domain 16 per axis,
// d = 2, eps 1) so the absorb seeds exercise the accept path.
void EmitMultiDim() {
  Rng rng(808);
  MultiDimClient client(/*domain_per_dim=*/16, /*dimensions=*/2, kEps);
  const uint64_t point[2] = {3, 12};
  std::vector<uint8_t> single = client.EncodeSerialized(point, rng);
  WriteFile("multidim_absorb", "v2_single", single);
  WriteFile("decode_envelope", "multidim_single", single);
  std::vector<uint64_t> coords = {0, 0, 3, 12, 15, 15, 7, 8, 2, 9};
  std::vector<uint8_t> batch = client.EncodeUsersSerialized(coords, rng);
  WriteFile("multidim_absorb", "v2_batch", batch);
  WriteFile("decode_envelope", "multidim_batch", batch);

  // Valid frame, cell past the OLH hash range: server-side rejection.
  MultiDimReport forged;
  forged.levels = {1, 0};
  forged.seed = 7;
  forged.cell = 0xFFFFFFFFu;
  WriteFile("multidim_absorb", "v2_cell_out_of_range",
            SerializeMultiDimReport(forged));
  // Wrong dimensionality for the harness's 2-D server.
  MultiDimReport wrong_dims;
  wrong_dims.levels = {1, 0, 2};
  wrong_dims.seed = 9;
  WriteFile("multidim_absorb", "v2_wrong_dims",
            SerializeMultiDimReport(wrong_dims));
  // All-root level tuple: structurally invalid (parser rejection).
  std::vector<uint8_t> all_root = single;
  for (size_t i = 0; i < 2; ++i) all_root[kEnvelopeHeaderSize + 1 + i] = 0;
  WriteFile("multidim_absorb", "v2_all_root_tuple", all_root);
  // Truncated mid-item inside a batch.
  std::vector<uint8_t> truncated(batch.begin(), batch.end() - 5);
  WriteFile("multidim_absorb", "v2_truncated_batch", truncated);

  // Box-query request for the query-parser totality branch.
  ldp::service::MultiDimQueryRequest query;
  query.query_id = 11;
  query.server_id = 0;
  query.dimensions = 2;
  ldp::service::QueryBox box;
  box.axes = {{0, 15}, {3, 12}};
  query.boxes = {box};
  WriteFile("multidim_absorb", "v2_box_query",
            ldp::service::SerializeMultiDimQueryRequest(query));
}

void EmitAdversarial() {
  Rng rng(505);
  FlatHrrClient client(kFlatDomain, kEps);
  std::vector<uint8_t> good = client.EncodeSerialized(7, rng);

  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] = 0x00;
  WriteFile("decode_envelope", "bad_magic", bad_magic);

  std::vector<uint8_t> future_version = good;
  future_version[2] = 9;
  WriteFile("decode_envelope", "unsupported_version", future_version);

  std::vector<uint8_t> unknown_mech = good;
  unknown_mech[3] = 0x7F;
  WriteFile("decode_envelope", "unknown_mechanism", unknown_mech);

  // Header claims ~4 GiB of payload; only one byte follows.
  std::vector<uint8_t> huge;
  AppendEnvelopeHeader(huge, MechanismTag::kFlatHrr, 0xFFFFFFF0u);
  huge.push_back(0);
  WriteFile("decode_envelope", "huge_payload_len", huge);

  std::vector<uint8_t> truncated(good.begin(), good.begin() + 5);
  WriteFile("decode_envelope", "truncated_header", truncated);

  std::vector<uint8_t> trailing = good;
  trailing.push_back(0xAA);
  WriteFile("decode_envelope", "trailing_junk", trailing);

  // Batch frame whose count disagrees with the payload size.
  std::vector<uint8_t> payload = {/*count varint=*/3, /*one byte*/ 0x01};
  WriteFile("decode_envelope", "batch_count_mismatch",
            EncodeEnvelope(MechanismTag::kFlatHrrBatch, payload));
}

// Seeds for FuzzStreamSession, which walks its input as a concatenated
// inbound message stream. Server ids replicate the harness: 0 = flat
// (domain 64), 1 = tree (domain 128, fanout 4).
void EmitStream() {
  using ldp::service::kStreamFlagFinalize;
  Rng rng(707);
  FlatHrrClient flat(kFlatDomain, kEps);
  std::vector<uint64_t> values = {1, 5, 9, 33, 63};
  std::vector<uint8_t> chunk0 = flat.EncodeUsersSerialized(values, rng);
  std::vector<uint8_t> chunk1 = flat.EncodeUsersSerialized(values, rng);

  auto concat = [](std::initializer_list<std::vector<uint8_t>> parts) {
    std::vector<uint8_t> out;
    for (const std::vector<uint8_t>& part : parts) {
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  };
  auto begin = [](uint64_t session, uint64_t server) {
    return ldp::service::SerializeStreamBegin({session, server});
  };
  auto chunk = [](uint64_t session, uint64_t seq,
                  const std::vector<uint8_t>& nested) {
    return ldp::service::SerializeStreamChunk(session, seq, nested);
  };
  auto end = [](uint64_t session, uint64_t count, uint8_t flags) {
    return ldp::service::SerializeStreamEnd({session, count, flags});
  };

  // A complete happy-path session, finalized by the stream itself.
  WriteFile("stream_session", "v2_stream_full",
            concat({begin(1, 0), chunk(1, 0, chunk0), chunk(1, 1, chunk1),
                    end(1, 2, kStreamFlagFinalize)}));
  // Chunks out of order: must still complete and finalize.
  WriteFile("stream_session", "v2_stream_out_of_order",
            concat({begin(2, 0), chunk(2, 1, chunk1), chunk(2, 0, chunk0),
                    end(2, 2, kStreamFlagFinalize)}));
  // Duplicate session id, then a replayed chunk sequence.
  WriteFile("stream_session", "v2_stream_dup_session",
            concat({begin(3, 0), begin(3, 0), chunk(3, 0, chunk0),
                    end(3, 1, 0)}));
  WriteFile("stream_session", "v2_stream_dup_chunk",
            concat({begin(4, 0), chunk(4, 0, chunk0), chunk(4, 0, chunk0),
                    end(4, 1, kStreamFlagFinalize)}));
  // kStreamEnd cut mid-payload: the stream never completes.
  std::vector<uint8_t> full_end = end(5, 1, kStreamFlagFinalize);
  std::vector<uint8_t> cut_end(full_end.begin(), full_end.end() - 3);
  WriteFile("stream_session", "v2_stream_truncated_end",
            concat({begin(5, 0), chunk(5, 0, chunk0), cut_end}));
  // A flat batch streamed at the tree server: every report rejected,
  // never crashed on.
  WriteFile("stream_session", "v2_stream_wrong_mechanism",
            concat({begin(6, 1), chunk(6, 0, chunk0),
                    end(6, 1, kStreamFlagFinalize)}));
  // Query plane: a valid request and one with a reversed interval.
  ldp::service::RangeQueryRequest query;
  query.query_id = 9;
  query.server_id = 0;
  query.intervals = {{0, 63}, {5, 10}};
  WriteFile("stream_session", "v2_query",
            ldp::service::SerializeRangeQueryRequest(query));
  query.intervals = {{10, 5}};
  WriteFile("stream_session", "v2_query_reversed",
            ldp::service::SerializeRangeQueryRequest(query));
}

// Stats-plane seeds: a realistic scrape response built from a live
// registry (counters + gauge + log2 histograms), plus near-valid frames
// pinning the canonical-form checks the parser enforces.
void EmitStats() {
  using ldp::obs::StatsQuery;
  using ldp::obs::StatsResponse;
  using ldp::obs::StatsStatus;

  StatsQuery query;
  query.query_id = 42;
  query.flags = ldp::obs::kStatsFlagIncludeGlobal;
  WriteFile("decode_envelope", "stats_query",
            ldp::obs::SerializeStatsQuery(query));

  ldp::obs::MetricsRegistry registry;
  registry.GetCounter("net.bytes_received").Add(123456);
  registry.GetCounter("service.messages").Add(789);
  registry.GetGauge("service.queue_depth").Add(-3);
  ldp::obs::LatencyHistogram& hist =
      registry.GetHistogram("server0.absorb_batch_ns");
  for (uint64_t v : {0ull, 1ull, 900ull, 1024ull, 55555ull, 1048576ull}) {
    hist.Record(v);
  }
  StatsResponse response;
  response.query_id = 42;
  response.metrics = registry.Snapshot();
  WriteFile("decode_envelope", "stats_response",
            ldp::obs::SerializeStatsResponse(response));

  StatsResponse malformed;
  malformed.query_id = 42;
  malformed.status = StatsStatus::kMalformedRequest;
  WriteFile("decode_envelope", "stats_response_malformed_status",
            ldp::obs::SerializeStatsResponse(malformed));

  // Truncated mid-histogram: total-parser branch coverage.
  std::vector<uint8_t> full = ldp::obs::SerializeStatsResponse(response);
  std::vector<uint8_t> truncated(full.begin(), full.end() - 6);
  WriteFile("decode_envelope", "stats_response_truncated", truncated);

  // Hand-built canonical-form violations (both must parse as
  // kBadPayload, never crash): names out of order, and a histogram whose
  // min does not land in its lowest occupied bucket.
  std::vector<uint8_t> unsorted_payload;
  AppendU64(unsorted_payload, 7);
  AppendU8(unsorted_payload, 0);  // status ok
  AppendU8(unsorted_payload, ldp::obs::kStatsFormatVersion);
  AppendVarU64(unsorted_payload, 2);  // two counters, names descending
  AppendVarU64(unsorted_payload, 1);
  unsorted_payload.push_back('b');
  AppendVarU64(unsorted_payload, 10);
  AppendVarU64(unsorted_payload, 1);
  unsorted_payload.push_back('a');
  AppendVarU64(unsorted_payload, 20);
  AppendVarU64(unsorted_payload, 0);  // gauges
  AppendVarU64(unsorted_payload, 0);  // histograms
  WriteFile("decode_envelope", "stats_response_unsorted_names",
            EncodeEnvelope(MechanismTag::kStatsResponse, unsorted_payload));

  std::vector<uint8_t> bad_min_payload;
  AppendU64(bad_min_payload, 7);
  AppendU8(bad_min_payload, 0);
  AppendU8(bad_min_payload, ldp::obs::kStatsFormatVersion);
  AppendVarU64(bad_min_payload, 0);  // counters
  AppendVarU64(bad_min_payload, 0);  // gauges
  AppendVarU64(bad_min_payload, 1);  // one histogram
  AppendVarU64(bad_min_payload, 1);
  bad_min_payload.push_back('h');
  AppendVarU64(bad_min_payload, 100);  // sum
  AppendVarU64(bad_min_payload, 1);    // min: bucket 1, but lowest is 5
  AppendVarU64(bad_min_payload, 30);   // max
  AppendVarU64(bad_min_payload, 1);    // one occupied bucket
  AppendU8(bad_min_payload, 5);        // bucket 5 = [16, 32)
  AppendVarU64(bad_min_payload, 3);
  WriteFile("decode_envelope", "stats_response_min_outside_bucket",
            EncodeEnvelope(MechanismTag::kStatsResponse, bad_min_payload));
}

// Distributed fan-in state-plane seeds (PR 10): canonical snapshots of
// servers the FuzzDecodeEnvelope merge loop can actually accept (the
// configs replicate its AllServerSpecs(64, 1.0) set plus the 16x16
// fanout-2 grid), and near-valid frames pinning the parser's and
// MergeSerializedState's error branches.
void EmitState() {
  using ldp::service::MakeAggregatorServer;
  using ldp::service::ServerKind;
  using ldp::service::ServerSpec;

  Rng rng(909);
  auto ingest = [](ldp::service::AggregatorServer& server,
                   const std::vector<uint8_t>& batch) {
    uint64_t accepted = 0;
    if (server.AbsorbBatchSerialized(batch, &accepted) != ParseError::kOk ||
        accepted == 0) {
      std::fprintf(stderr, "state seed ingest failed\n");
      std::exit(1);
    }
  };

  // Flat, matching the harness's 64-wide eps-1 server: the merge loop
  // takes the accept path all the way through finalize + query.
  FlatHrrClient flat_client(kFlatDomain, kEps);
  auto flat = MakeAggregatorServer({ServerKind::kFlat, kFlatDomain, kEps});
  const std::vector<uint64_t> flat_values = {1, 5, 9, 33, 63};
  ingest(*flat, flat_client.EncodeUsersSerialized(flat_values, rng));
  std::vector<uint8_t> flat_snapshot = flat->SerializeState();
  WriteFile("decode_envelope", "state_snapshot_flat", flat_snapshot);

  // The same snapshot wrapped as one fan-in push: shard 0 of 2, with
  // the finalize flag.
  ldp::service::StateMergeRequest push;
  push.merge_id = 7;
  push.server_id = 0;
  push.shard_index = 0;
  push.shard_count = 2;
  push.flags = ldp::service::kMergeFlagFinalize;
  WriteFile("decode_envelope", "state_merge_flat",
            ldp::service::SerializeStateMerge(push, flat_snapshot));

  // Tree and AHEAD: the other adaptive 1-D families in the merge loop.
  {
    TreeHrrClient client(/*domain=*/64, kTreeFanout, kEps);
    auto server = MakeAggregatorServer({ServerKind::kTree, 64, kEps});
    const std::vector<uint64_t> values = {2, 31, 47, 63};
    ingest(*server, client.EncodeUsersSerialized(values, rng));
    WriteFile("decode_envelope", "state_snapshot_tree",
              server->SerializeState());
  }
  {
    AheadClient client(/*domain=*/64, /*fanout=*/4, kEps);
    auto server = MakeAggregatorServer({ServerKind::kAhead, 64, kEps});
    std::vector<AheadWireReport> reports;
    for (uint64_t v : {3u, 17u, 42u}) {
      reports.push_back(client.EncodePhase1(v, rng));
    }
    ingest(*server, SerializeAheadReportBatch(reports));
    WriteFile("decode_envelope", "state_snapshot_ahead",
              server->SerializeState());
  }
  // Grid, matching the harness's 16x16 fanout-2 spec.
  {
    MultiDimClient client(/*domain_per_dim=*/16, /*dimensions=*/2, kEps,
                          /*fanout=*/2);
    ServerSpec spec;
    spec.kind = ServerKind::kGrid;
    spec.domain = 16;
    spec.dimensions = 2;
    spec.fanout = 2;
    auto server = MakeAggregatorServer(spec);
    const std::vector<uint64_t> coords = {0, 0, 3, 12, 15, 15};
    ingest(*server, client.EncodeUsersSerialized(coords, rng));
    WriteFile("decode_envelope", "state_snapshot_grid",
              server->SerializeState());
  }

  // Epsilon mismatch: parses fine, every merge rejects (kConfigMismatch).
  {
    FlatHrrClient client(kFlatDomain, /*eps=*/2.0);
    auto server = MakeAggregatorServer({ServerKind::kFlat, kFlatDomain, 2.0});
    const std::vector<uint64_t> values = {2, 4};
    ingest(*server, client.EncodeUsersSerialized(values, rng));
    WriteFile("decode_envelope", "state_snapshot_eps_mismatch",
              server->SerializeState());
  }
  // Forged kind byte (parser rejection) and a cut mid-payload.
  std::vector<uint8_t> forged_kind = flat_snapshot;
  forged_kind[kEnvelopeHeaderSize] = 0x7F;
  WriteFile("decode_envelope", "state_snapshot_forged_kind", forged_kind);
  std::vector<uint8_t> truncated(flat_snapshot.begin(),
                                 flat_snapshot.end() - 5);
  WriteFile("decode_envelope", "state_snapshot_truncated", truncated);

  // Valid header, garbage body (a lone truncated varint): frames as a
  // snapshot, MergeSerializedState rejects it (kMalformedSnapshot).
  {
    ldp::service::StateSnapshotHeader header;
    header.kind = ldp::service::StateKind::kFlat;
    header.dimensions = 1;
    header.domain = kFlatDomain;
    header.fanout = 0;
    header.eps = kEps;
    header.accepted = 1;
    header.rejected = 0;
    const std::vector<uint8_t> junk = {0xFF};
    WriteFile("decode_envelope", "state_snapshot_bad_body",
              ldp::service::SerializeStateSnapshot(header, junk));
  }
  // Impossible shard geometry (index >= count): parser rejection.
  {
    std::vector<uint8_t> payload;
    AppendU64(payload, 7);
    AppendU64(payload, 0);
    AppendVarU64(payload, 5);  // shard_index
    AppendVarU64(payload, 2);  // shard_count
    AppendU8(payload, 0);
    payload.insert(payload.end(), flat_snapshot.begin(),
                   flat_snapshot.end());
    WriteFile("decode_envelope", "state_merge_bad_geometry",
              EncodeEnvelope(MechanismTag::kStateMerge, payload));
  }
  // Typed acks: the happy path and the backpressure signal.
  {
    ldp::service::StateMergeResponse ack;
    ack.merge_id = 7;
    ack.status = ldp::service::MergeStatus::kOk;
    ack.shards_received = 1;
    WriteFile("decode_envelope", "state_merge_response_ok",
              ldp::service::SerializeStateMergeResponse(ack));
    ack.status = ldp::service::MergeStatus::kWouldBlock;
    ack.shards_received = 0;
    WriteFile("decode_envelope", "state_merge_response_would_block",
              ldp::service::SerializeStateMergeResponse(ack));
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_root = argc > 1 ? std::filesystem::path(argv[1])
                    : std::filesystem::path("fuzz/corpus");
  EmitFlat();
  EmitHaar();
  EmitTree();
  EmitAhead();
  EmitMultiDim();
  EmitOracles();
  EmitAdversarial();
  EmitStream();
  EmitStats();
  EmitState();
  return 0;
}
