// Minimal libFuzzer-compatible replay driver for toolchains without
// -fsanitize=fuzzer (e.g. gcc). No mutation, no coverage guidance: each
// argument is a corpus file (or a directory of them) replayed once
// through LLVMFuzzerTestOneInput. With no arguments it replays stdin.
// Ignores dash-prefixed arguments so libFuzzer flags like
// -max_total_time=30 don't break scripted invocations.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::vector<uint8_t> ReadAll(std::istream& in) {
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

int RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<uint8_t> bytes = ReadAll(in);
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  std::printf("ran %s (%zu bytes)\n", path.c_str(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // libFuzzer flag
    std::filesystem::path path(arg);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else {
      files.push_back(path);
    }
  }
  if (files.empty()) {
    std::vector<uint8_t> bytes = ReadAll(std::cin);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    std::printf("ran <stdin> (%zu bytes)\n", bytes.size());
    return 0;
  }
  int failures = 0;
  for (const auto& path : files) {
    failures += RunFile(path);
  }
  return failures == 0 ? 0 : 1;
}
